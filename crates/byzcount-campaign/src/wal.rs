//! The campaign store: an append-only write-ahead log of per-cell
//! results plus a periodic snapshot.
//!
//! Layout under `<root>/<job>/`:
//!
//! * `spec.json` — the [`CampaignSpec`], written once at creation
//!   (tmp + fsync + rename).
//! * `wal.log` — framed [`CellRecord`]s: `[u32 LE payload length]`
//!   `[u32 LE FNV-1a checksum]` `[compact JSON payload]`.  Appends are
//!   flushed and `fdatasync`ed record-by-record, so after a crash at most
//!   the *tail* record is torn.
//! * `snapshot.json` — a compacted image of every durable record, written
//!   atomically (tmp + fsync + rename); after a successful snapshot the
//!   WAL is truncated to zero.
//!
//! Recovery loads the snapshot (if any), then replays the WAL and
//! **truncates the first torn record** — short header, absurd length,
//! checksum mismatch, unparsable payload, or a record inconsistent with
//! the spec's own cell expansion (out-of-range index, wrong identity tag,
//! non-monotone sequence number).  Everything before the tear is durable
//! and kept; the scheduler resumes from the surviving cell set.

use crate::error::CampaignError;
use crate::spec::{CampaignCell, CampaignSpec};
use crate::telemetry::Telemetry;
use byzcount_core::sim::RunReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on a single framed payload; anything larger is treated as
/// a torn length field.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// One durable result: the `seq`-th record appended to the store, holding
/// the report of cell `cell` (identity-tagged with `id`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Monotone append sequence number — the results cursor is defined
    /// over it: a reader at cursor `c` receives exactly the records with
    /// `seq >= c`, each once.
    pub seq: u64,
    /// Cell index in [`CampaignSpec::cells`] expansion order.
    pub cell: u64,
    /// The cell's identity tag ([`crate::spec::cell_identity`]); recovery
    /// cross-checks it against the re-expanded spec.
    pub id: u64,
    /// The completed run.
    pub report: RunReport,
}

#[derive(Serialize, Deserialize)]
struct Snapshot {
    next_seq: u64,
    records: Vec<CellRecord>,
}

/// FNV-1a 32-bit — the frame checksum.
fn checksum32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Frame a payload for the WAL.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn write_atomically(path: &Path, contents: &str) -> Result<(), CampaignError> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// The per-job durable store.  All mutation goes through [`append`]
/// (WAL) and [`checkpoint`] (snapshot + WAL truncation); opening an
/// existing directory runs recovery.
///
/// [`append`]: CampaignStore::append
/// [`checkpoint`]: CampaignStore::checkpoint
pub struct CampaignStore {
    dir: PathBuf,
    spec: CampaignSpec,
    cells: Vec<CampaignCell>,
    /// Durable records in `seq` order (snapshot records first, then the
    /// surviving WAL suffix, then in-session appends).
    records: Vec<CellRecord>,
    /// cell index → position in `records` of its (first) report.
    by_cell: BTreeMap<u64, usize>,
    wal: File,
    next_seq: u64,
    /// Optional observation-only telemetry sink; when present, [`append`]
    /// times its `fdatasync` into the fsync latency histogram.
    ///
    /// [`append`]: CampaignStore::append
    telemetry: Option<Arc<Telemetry>>,
}

impl CampaignStore {
    fn job_dir(root: &Path, job: &str) -> PathBuf {
        root.join(job)
    }

    /// Path of the job's WAL file (exposed for tests that simulate torn
    /// writes by truncating it).
    pub fn wal_path(root: &Path, job: &str) -> PathBuf {
        Self::job_dir(root, job).join("wal.log")
    }

    /// Open the job's store under `root`, creating it if absent.  If the
    /// job already exists its persisted spec must equal `spec` (same
    /// job id, different sweep is an error, not a silent overwrite);
    /// existing state is recovered.  Returns the store and whether it
    /// resumed prior state.
    pub fn open_or_create(root: &Path, spec: &CampaignSpec) -> Result<(Self, bool), CampaignError> {
        spec.validate()?;
        // Persist (and compare) the migrated form, so an old-version spec
        // and its current-version equivalent name the same job state.
        let mut spec = spec.clone();
        spec.migrate();
        let dir = Self::job_dir(root, &spec.job);
        let spec_path = dir.join("spec.json");
        if spec_path.exists() {
            let store = Self::open(root, &spec.job)?;
            if store.spec != spec {
                return Err(CampaignError::State(format!(
                    "job `{}` already exists with a different spec",
                    spec.job
                )));
            }
            let resumed = !store.records.is_empty();
            return Ok((store, resumed));
        }
        fs::create_dir_all(&dir)?;
        write_atomically(&spec_path, &spec.to_json())?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("wal.log"))?;
        let cells = spec.cells();
        Ok((
            CampaignStore {
                dir,
                spec,
                cells,
                records: Vec::new(),
                by_cell: BTreeMap::new(),
                wal,
                next_seq: 0,
                telemetry: None,
            },
            false,
        ))
    }

    /// Open an existing job and run recovery: load the snapshot, replay
    /// the WAL, truncate the torn tail (if any), and rebuild the
    /// completed-cell map.
    pub fn open(root: &Path, job: &str) -> Result<Self, CampaignError> {
        let dir = Self::job_dir(root, job);
        let spec_text = fs::read_to_string(dir.join("spec.json"))
            .map_err(|e| CampaignError::State(format!("unknown job `{job}`: {e}")))?;
        let spec = CampaignSpec::from_json(&spec_text)?;
        let cells = spec.cells();

        let mut records: Vec<CellRecord> = Vec::new();
        let mut next_seq: u64 = 0;
        let snap_path = dir.join("snapshot.json");
        if snap_path.exists() {
            // Snapshots are written atomically, so a present-but-broken
            // snapshot is real corruption, not a torn write.
            let text = fs::read_to_string(&snap_path)?;
            let snap: Snapshot = serde_json::from_str(&text)
                .map_err(|e| CampaignError::Corrupt(format!("snapshot unreadable: {e}")))?;
            next_seq = snap.next_seq;
            records = snap.records;
        }

        let wal_path = dir.join("wal.log");
        let mut bytes = Vec::new();
        if wal_path.exists() {
            File::open(&wal_path)?.read_to_end(&mut bytes)?;
        }
        let mut good = 0usize;
        let mut offset = 0usize;
        loop {
            if bytes.len() - offset < 8 {
                break; // torn or absent header
            }
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
            let sum = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            if len > MAX_RECORD_BYTES {
                break; // garbage length field
            }
            let len = len as usize;
            if bytes.len() - offset - 8 < len {
                break; // torn payload
            }
            let payload = &bytes[offset + 8..offset + 8 + len];
            if checksum32(payload) != sum {
                break; // torn or bit-flipped payload
            }
            let Ok(text) = std::str::from_utf8(payload) else {
                break;
            };
            let Ok(record) = serde_json::from_str::<CellRecord>(text) else {
                break;
            };
            let consistent = record.seq >= next_seq
                && (record.cell as usize) < cells.len()
                && cells[record.cell as usize].id == record.id;
            if !consistent {
                break; // stale or foreign record: treat as the tear point
            }
            next_seq = record.seq + 1;
            records.push(record);
            offset += 8 + len;
            good = offset;
        }
        if good < bytes.len() {
            // Drop the torn tail so future appends start on a clean frame
            // boundary.
            let file = OpenOptions::new().write(true).open(&wal_path)?;
            file.set_len(good as u64)?;
            file.sync_data()?;
        }

        let mut by_cell = BTreeMap::new();
        let mut dedup = Vec::with_capacity(records.len());
        for record in records {
            // Keep the first report per cell (re-runs after an unsynced
            // resume produce identical reports anyway — specs are
            // deterministic — but the cursor contract promises no
            // duplicates).
            if let std::collections::btree_map::Entry::Vacant(entry) = by_cell.entry(record.cell) {
                entry.insert(dedup.len());
                dedup.push(record);
            }
        }

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        Ok(CampaignStore {
            dir,
            spec,
            cells,
            records: dedup,
            by_cell,
            wal,
            next_seq,
            telemetry: None,
        })
    }

    /// The job's spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The full deterministic cell expansion.
    pub fn cells(&self) -> &[CampaignCell] {
        &self.cells
    }

    /// Durable records in `seq` order.
    pub fn records(&self) -> &[CellRecord] {
        &self.records
    }

    /// The report of a completed cell, if durable.
    pub fn report_of(&self, cell: u64) -> Option<&RunReport> {
        self.by_cell.get(&cell).map(|&i| &self.records[i].report)
    }

    /// Number of completed (durable) cells.
    pub fn completed(&self) -> usize {
        self.by_cell.len()
    }

    /// Cells with no durable report yet, in expansion order — the
    /// scheduler's work list on start and on resume.
    pub fn pending_cells(&self) -> Vec<CampaignCell> {
        self.cells
            .iter()
            .filter(|c| !self.by_cell.contains_key(&c.index))
            .cloned()
            .collect()
    }

    /// The cursor value one past the last durable record.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Install an observation-only telemetry sink; subsequent
    /// [`append`](CampaignStore::append)s time their fsync into it.
    /// Durability and record contents are unaffected.
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Append one completed cell to the WAL (flushed and synced before
    /// returning — once `append` returns, the record survives a crash).
    /// A duplicate report for an already-durable cell is ignored.
    pub fn append(&mut self, cell: u64, report: RunReport) -> Result<&CellRecord, CampaignError> {
        let Some(expected) = self.cells.get(cell as usize) else {
            return Err(CampaignError::State(format!(
                "cell {cell} out of range (job has {} cells)",
                self.cells.len()
            )));
        };
        if let Some(&i) = self.by_cell.get(&cell) {
            return Ok(&self.records[i]);
        }
        let record = CellRecord {
            seq: self.next_seq,
            cell,
            id: expected.id,
            report,
        };
        let payload = serde_json::to_string(&record).expect("CellRecord serialization cannot fail");
        self.wal.write_all(&frame(payload.as_bytes()))?;
        match &self.telemetry {
            Some(telemetry) => {
                let start = Instant::now();
                self.wal.sync_data()?;
                telemetry.record_fsync_ns(start.elapsed().as_nanos() as u64);
            }
            None => self.wal.sync_data()?,
        }
        self.next_seq += 1;
        self.by_cell.insert(cell, self.records.len());
        self.records.push(record);
        Ok(self.records.last().expect("just pushed"))
    }

    /// Compact: write every durable record into `snapshot.json`
    /// atomically, then truncate the WAL.  A crash between the two steps
    /// is safe — recovery replays the (now redundant) WAL records after
    /// the snapshot and deduplicates by cell.
    pub fn checkpoint(&mut self) -> Result<(), CampaignError> {
        let snap = Snapshot {
            next_seq: self.next_seq,
            records: self.records.clone(),
        };
        let text = serde_json::to_string(&snap).expect("Snapshot serialization cannot fail");
        write_atomically(&self.dir.join("snapshot.json"), &text)?;
        let wal_path = self.dir.join("wal.log");
        let file = OpenOptions::new().write(true).open(&wal_path)?;
        file.set_len(0)?;
        file.sync_data()?;
        self.wal = OpenOptions::new().append(true).open(&wal_path)?;
        Ok(())
    }

    /// Whether every cell has a durable report.
    pub fn is_complete(&self) -> bool {
        self.by_cell.len() == self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::demo_batch;
    use byzcount_analysis::campaign::FullRegistry;
    use byzcount_core::sim::execute_spec;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("byzcount-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec(job: &str) -> CampaignSpec {
        CampaignSpec::for_batch(job, demo_batch())
    }

    fn run_cell(store: &CampaignStore, cell: usize) -> RunReport {
        execute_spec(&store.cells()[cell].spec, &FullRegistry).unwrap()
    }

    #[test]
    fn append_recover_round_trip() {
        let root = tmp_root("roundtrip");
        let spec = spec("rt");
        let (mut store, resumed) = CampaignStore::open_or_create(&root, &spec).unwrap();
        assert!(!resumed);
        let r0 = run_cell(&store, 0);
        let r3 = run_cell(&store, 3);
        store.append(0, r0.clone()).unwrap();
        store.append(3, r3.clone()).unwrap();
        drop(store);

        let store = CampaignStore::open(&root, "rt").unwrap();
        assert_eq!(store.completed(), 2);
        assert_eq!(store.report_of(0), Some(&r0));
        assert_eq!(store.report_of(3), Some(&r3));
        assert_eq!(store.next_seq(), 2);
        assert_eq!(store.pending_cells().len(), store.cells().len() - 2);

        let (store, resumed) = CampaignStore::open_or_create(&root, &spec).unwrap();
        assert!(resumed);
        assert_eq!(store.completed(), 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_survives() {
        let root = tmp_root("checkpoint");
        let (mut store, _) = CampaignStore::open_or_create(&root, &spec("cp")).unwrap();
        let r0 = run_cell(&store, 0);
        let r1 = run_cell(&store, 1);
        store.append(0, r0.clone()).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(
            fs::metadata(CampaignStore::wal_path(&root, "cp"))
                .unwrap()
                .len(),
            0
        );
        store.append(1, r1.clone()).unwrap();
        drop(store);

        let store = CampaignStore::open(&root, "cp").unwrap();
        assert_eq!(store.completed(), 2);
        assert_eq!(store.report_of(0), Some(&r0));
        assert_eq!(store.report_of(1), Some(&r1));
        assert_eq!(store.next_seq(), 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_last_good_record() {
        let root = tmp_root("torn");
        let (mut store, _) = CampaignStore::open_or_create(&root, &spec("torn")).unwrap();
        let r0 = run_cell(&store, 0);
        let r1 = run_cell(&store, 1);
        store.append(0, r0.clone()).unwrap();
        let boundary = fs::metadata(CampaignStore::wal_path(&root, "torn"))
            .unwrap()
            .len();
        store.append(1, r1).unwrap();
        drop(store);

        // Tear the second record mid-payload.
        let wal = CampaignStore::wal_path(&root, "torn");
        let full = fs::metadata(&wal).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(boundary + (full - boundary) / 2).unwrap();
        drop(f);

        let store = CampaignStore::open(&root, "torn").unwrap();
        assert_eq!(store.completed(), 1, "only the intact record survives");
        assert_eq!(store.report_of(0), Some(&r0));
        assert_eq!(store.next_seq(), 1);
        // The tail was physically dropped, so appends resume cleanly.
        assert_eq!(fs::metadata(&wal).unwrap().len(), boundary);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let root = tmp_root("mismatch");
        let (store, _) = CampaignStore::open_or_create(&root, &spec("job")).unwrap();
        drop(store);
        let mut other = spec("job");
        other.batch.sizes = Some(vec![32]);
        let Err(err) = CampaignStore::open_or_create(&root, &other) else {
            panic!("different spec under the same job id must be rejected");
        };
        assert!(matches!(err, CampaignError::State(_)), "{err}");
        fs::remove_dir_all(&root).unwrap();
    }
}
