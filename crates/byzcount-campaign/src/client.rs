//! The campaign client: a blocking, line-oriented connection to a
//! [`CampaignServer`](crate::server::CampaignServer).
//!
//! [`Client::connect`] performs the hello handshake (the server speaks
//! first; majors must match), after which each method is one
//! request/response exchange.  [`Client::watch`] layers the pull-model
//! cursor on top: it pages records from a starting cursor until the
//! server reports the job done, sleeping briefly between empty pages —
//! the streaming consumption mode of a live campaign.

use crate::error::CampaignError;
use crate::net::IoStream;
use crate::protocol::{
    decode_hello, decode_line, encode_hello, encode_line, Hello, JobStatus, Request, Response,
    ServerStats,
};
use crate::spec::CampaignSpec;
use crate::wal::CellRecord;
use byzcount_core::sim::BatchReport;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// One connected protocol session.
pub struct Client {
    reader: BufReader<IoStream>,
    writer: IoStream,
    server_hello: Hello,
}

impl Client {
    /// Dial `addr` (`unix:<path>` or `<host>:<port>`) and complete the
    /// handshake.
    pub fn connect(addr: &str) -> Result<Self, CampaignError> {
        let stream = IoStream::connect(addr)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(CampaignError::Protocol(
                "server closed before the hello".into(),
            ));
        }
        let server_hello = decode_hello(&line)?;
        server_hello.check_compatible()?;
        writer.write_all(encode_hello(&Hello::current()).as_bytes())?;
        writer.flush()?;
        Ok(Client {
            reader,
            writer,
            server_hello,
        })
    }

    /// The server's hello (its protocol and spec versions).
    pub fn server_hello(&self) -> &Hello {
        &self.server_hello
    }

    fn call(&mut self, request: &Request) -> Result<Response, CampaignError> {
        self.writer.write_all(encode_line(request).as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(CampaignError::Protocol("server closed mid-exchange".into()));
        }
        match decode_line::<Response>(&line)? {
            Response::Error { code, message } => Err(CampaignError::Protocol(format!(
                "server [{code}]: {message}"
            ))),
            other => Ok(other),
        }
    }

    /// Submit (or re-attach to) a job; returns `(cells, resumed)`.
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<(u64, bool), CampaignError> {
        match self.call(&Request::Submit {
            spec: Box::new(spec.clone()),
        })? {
            Response::Submitted { cells, resumed, .. } => Ok((cells, resumed)),
            other => Err(unexpected("submitted", &other)),
        }
    }

    /// Fetch a job's progress counters.
    pub fn status(&mut self, job: &str) -> Result<JobStatus, CampaignError> {
        match self.call(&Request::Status {
            job: job.to_string(),
        })? {
            Response::Status(status) => Ok(status),
            other => Err(unexpected("status", &other)),
        }
    }

    /// Fetch one page of records from `cursor`; returns the page, the
    /// next cursor, and whether the job is done.
    pub fn results(
        &mut self,
        job: &str,
        cursor: u64,
        max: u32,
    ) -> Result<(Vec<CellRecord>, u64, bool), CampaignError> {
        match self.call(&Request::Results {
            job: job.to_string(),
            cursor,
            max,
            merged: false,
        })? {
            Response::Results {
                records,
                cursor,
                done,
                ..
            } => Ok((records, cursor, done)),
            other => Err(unexpected("results", &other)),
        }
    }

    /// Fetch the merged [`BatchReport`] of a complete job.
    pub fn merged(&mut self, job: &str) -> Result<BatchReport, CampaignError> {
        match self.call(&Request::Results {
            job: job.to_string(),
            cursor: 0,
            max: 1,
            merged: true,
        })? {
            Response::Merged { report } => Ok(*report),
            other => Err(unexpected("merged", &other)),
        }
    }

    /// Fetch live service telemetry (requires a server speaking protocol
    /// minor ≥ 1; an older server answers with a clean `unknown verb`
    /// error, surfaced as [`CampaignError::Protocol`]).
    pub fn stats(&mut self) -> Result<ServerStats, CampaignError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Cancel a job's pending cells.
    pub fn cancel(&mut self, job: &str) -> Result<(), CampaignError> {
        match self.call(&Request::Cancel {
            job: job.to_string(),
        })? {
            Response::Cancelled { .. } => Ok(()),
            other => Err(unexpected("cancelled", &other)),
        }
    }

    /// Stream a job's records from `cursor` until done, invoking
    /// `on_record` for each (exactly once per record, in durable order).
    /// Returns the final cursor.
    pub fn watch(
        &mut self,
        job: &str,
        cursor: u64,
        page: u32,
        mut on_record: impl FnMut(&CellRecord),
    ) -> Result<u64, CampaignError> {
        let mut cursor = cursor;
        loop {
            let (records, next, done) = self.results(job, cursor, page)?;
            let progressed = !records.is_empty();
            for record in &records {
                on_record(record);
            }
            cursor = next;
            if done && !progressed {
                return Ok(cursor);
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> CampaignError {
    CampaignError::Protocol(format!("expected `{wanted}` response, got {got:?}"))
}
