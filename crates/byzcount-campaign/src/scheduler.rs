//! The campaign scheduler: runs a job's pending cells on a worker pool,
//! streaming completed cells through the WAL and checkpointing
//! periodically.
//!
//! Workers claim *chunks* of pending cells from a shared queue and
//! execute them with standalone-run-equivalent semantics via
//! [`execute_spec`], so a campaign cell produces byte-identical output to
//! the same spec run standalone.  A single drain thread (the caller)
//! owns the store: workers send `(cell, report)` pairs over a channel and
//! every append is durable before the next is accepted.  Graceful
//! shutdown (`stop` flag) lets in-flight cells finish, drops unstarted
//! ones, and checkpoints — the next run resumes from exactly the durable
//! set.

use crate::error::CampaignError;
use crate::spec::CampaignCell;
use crate::telemetry::Telemetry;
use crate::wal::{CampaignStore, CellRecord};
use byzcount_core::sim::{
    execute_spec, BatchReport, RunError, RunReport, ScenarioRegistry, SimError,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// Worker-pool and checkpoint policy (execution only — never affects
/// results).
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Worker threads executing cells.
    pub workers: usize,
    /// Checkpoint (snapshot + WAL truncation) after this many appends;
    /// `0` disables periodic checkpoints (one is still taken at the end).
    pub snapshot_every: usize,
    /// How many times a cell whose remote shard worker died
    /// ([`RunError::WorkerLost`]) is re-queued before the failure is
    /// terminal.  Lost-worker failures are transport faults, not spec
    /// faults, so a retry on a healthy worker is sound — and determinism
    /// guarantees the retried cell lands the exact report the lost run
    /// would have produced.  `0` fails on the first loss; other errors
    /// are never retried.
    pub cell_retries: u32,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            workers: 2,
            snapshot_every: 32,
            cell_retries: 2,
        }
    }
}

/// Is this the loss of a remote shard worker (retryable), as opposed to a
/// spec/semantic failure (terminal)?
fn is_worker_loss(err: &CampaignError) -> bool {
    matches!(
        err,
        CampaignError::Sim(SimError::Engine(
            RunError::WorkerLost { .. } | RunError::Fleet(_)
        ))
    )
}

/// Outcome of one [`run_campaign`] drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every cell of the job has a durable report.
    Complete,
    /// The stop flag was raised; in-flight cells were drained and a
    /// checkpoint taken, but pending cells remain.
    Stopped,
}

/// Execute every pending cell of `store`'s job, appending each result to
/// the WAL as it lands.  `on_record` observes each append (the server
/// uses it to wake streaming readers).  Honors `stop`: workers finish
/// the cell they are on, the drain loop persists those results, and the
/// function checkpoints and returns [`RunOutcome::Stopped`].
pub fn run_campaign(
    store: &Mutex<CampaignStore>,
    registry: &dyn ScenarioRegistry,
    config: RunnerConfig,
    stop: &AtomicBool,
    on_record: impl FnMut(&CellRecord),
) -> Result<RunOutcome, CampaignError> {
    run_campaign_telemetry(store, registry, config, stop, None, on_record)
}

/// [`run_campaign`] with an optional observation-only [`Telemetry`] sink:
/// workers mark themselves busy around each cell and every durable
/// append counts one cell done.  Results and durability are unaffected.
pub fn run_campaign_telemetry(
    store: &Mutex<CampaignStore>,
    registry: &dyn ScenarioRegistry,
    config: RunnerConfig,
    stop: &AtomicBool,
    telemetry: Option<&Telemetry>,
    mut on_record: impl FnMut(&CellRecord),
) -> Result<RunOutcome, CampaignError> {
    let (pending, chunk) = {
        let guard = store.lock().expect("store lock");
        (guard.pending_cells(), guard.spec().chunk())
    };
    if pending.is_empty() {
        return Ok(RunOutcome::Complete);
    }
    let total = pending.len();
    let workers = config.workers.max(1).min(total);
    let queue: Mutex<VecDeque<CampaignCell>> = Mutex::new(pending.into());
    let retries: Mutex<HashMap<u64, u32>> = Mutex::new(HashMap::new());
    let (tx, rx) = mpsc::channel::<(u64, Result<RunReport, CampaignError>)>();

    let mut failure: Option<CampaignError> = None;
    let mut landed = 0usize;
    let mut since_snapshot = 0usize;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let retries = &retries;
            scope.spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let batch: Vec<CampaignCell> = {
                    let mut q = queue.lock().expect("queue lock");
                    let take = chunk.min(q.len());
                    q.drain(..take).collect()
                };
                if batch.is_empty() {
                    break;
                }
                for cell in batch {
                    // Finish the claimed chunk even if stop was raised
                    // mid-chunk? No — stop means "wrap up": finish only
                    // the cell in hand, requeue nothing (the WAL already
                    // knows what is durable).
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let _busy = telemetry.map(|t| t.busy_guard());
                    let result: Result<RunReport, CampaignError> =
                        execute_spec(&cell.spec, registry).map_err(Into::into);
                    if let Err(err) = &result {
                        // A lost shard worker is a transport fault: put
                        // the cell back (bounded) instead of failing the
                        // job.  This worker keeps looping, so a
                        // re-queued cell is always picked up again even
                        // if every other worker already exited.
                        if is_worker_loss(err) {
                            let mut r = retries.lock().expect("retries lock");
                            let attempts = r.entry(cell.index).or_insert(0);
                            if *attempts < config.cell_retries {
                                *attempts += 1;
                                queue.lock().expect("queue lock").push_back(cell);
                                continue;
                            }
                        }
                    }
                    if tx.send((cell.index, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        // Drain: the single writer. Every received result is durable
        // before the next recv.
        while let Ok((cell, result)) = rx.recv() {
            match result {
                Ok(report) => {
                    let mut guard = store.lock().expect("store lock");
                    let record = guard.append(cell, report)?;
                    if let Some(t) = telemetry {
                        t.cell_done();
                    }
                    on_record(record);
                    landed += 1;
                    since_snapshot += 1;
                    if config.snapshot_every > 0 && since_snapshot >= config.snapshot_every {
                        guard.checkpoint()?;
                        since_snapshot = 0;
                    }
                }
                Err(err) => {
                    // Fail the job but keep draining so workers can exit.
                    stop.store(true, Ordering::SeqCst);
                    if failure.is_none() {
                        failure = Some(err);
                    }
                }
            }
        }
        Ok::<(), CampaignError>(())
    })?;

    let mut guard = store.lock().expect("store lock");
    guard.checkpoint()?;
    if let Some(err) = failure {
        return Err(err);
    }
    if landed == total && guard.is_complete() {
        Ok(RunOutcome::Complete)
    } else {
        Ok(RunOutcome::Stopped)
    }
}

/// Assemble the merged [`BatchReport`] of a *complete* job: runs in cell
/// (expansion) order, aggregated exactly as
/// [`execute_batch`](byzcount_core::sim::execute_batch) would — the
/// merged report of a resumed campaign is byte-identical to an
/// uninterrupted one-shot run of the same batch.
pub fn merged_report(store: &CampaignStore) -> Result<BatchReport, CampaignError> {
    if !store.is_complete() {
        return Err(CampaignError::State(format!(
            "job `{}` is not complete ({}/{} cells)",
            store.spec().job,
            store.completed(),
            store.cells().len()
        )));
    }
    let mut batch = store.spec().batch.clone();
    batch.validate().map_err(CampaignError::Sim)?;
    batch.migrate();
    let runs: Vec<RunReport> = store
        .cells()
        .iter()
        .map(|cell| {
            store
                .report_of(cell.index)
                .cloned()
                .expect("complete job has every report")
        })
        .collect();
    Ok(BatchReport::from_runs(batch, runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::demo_batch;
    use crate::spec::CampaignSpec;
    use byzcount_analysis::campaign::FullRegistry;
    use byzcount_core::sim::execute_batch;
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("byzcount-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn full_run_matches_one_shot_batch_byte_for_byte() {
        let root = tmp_root("full");
        let spec = CampaignSpec::for_batch("full", demo_batch());
        let (store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
        let store = Mutex::new(store);
        let stop = AtomicBool::new(false);
        let mut seen = Vec::new();
        let outcome = run_campaign(
            &store,
            &FullRegistry,
            RunnerConfig {
                workers: 3,
                snapshot_every: 2,
                cell_retries: 2,
            },
            &stop,
            |r| seen.push(r.seq),
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        let guard = store.lock().unwrap();
        assert_eq!(seen, (0..guard.cells().len() as u64).collect::<Vec<_>>());
        let merged = merged_report(&guard).unwrap();
        let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
        assert_eq!(merged.to_json(), oneshot.to_json());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stop_flag_checkpoints_and_resume_completes_identically() {
        let root = tmp_root("stop");
        let spec = CampaignSpec::for_batch("stop", demo_batch());
        let (store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
        let store = Mutex::new(store);
        // Raise stop after the second record lands: workers wrap up.
        let stop = AtomicBool::new(false);
        let mut landed = 0;
        run_campaign(
            &store,
            &FullRegistry,
            RunnerConfig {
                workers: 1,
                snapshot_every: 0,
                cell_retries: 2,
            },
            &stop,
            |_| {
                landed += 1;
                if landed == 2 {
                    stop.store(true, Ordering::SeqCst);
                }
            },
        )
        .unwrap();
        let done_so_far = store.lock().unwrap().completed();
        assert!(done_so_far >= 2, "at least the observed cells are durable");
        assert!(done_so_far < spec.cells().len(), "stop left pending work");
        drop(store);

        // Resume in a fresh store: only pending cells run; the merged
        // report is byte-identical to the uninterrupted run.
        let (store, resumed) = CampaignStore::open_or_create(&root, &spec).unwrap();
        assert!(resumed);
        let store = Mutex::new(store);
        let stop = AtomicBool::new(false);
        let outcome = run_campaign(
            &store,
            &FullRegistry,
            RunnerConfig::default(),
            &stop,
            |_| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        let merged = merged_report(&store.lock().unwrap()).unwrap();
        let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
        assert_eq!(merged.to_json(), oneshot.to_json());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn telemetry_counts_cells_and_fsyncs_without_changing_results() {
        let root = tmp_root("telemetry");
        let spec = CampaignSpec::for_batch("telemetry", demo_batch());
        let (mut store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
        let telemetry = std::sync::Arc::new(Telemetry::new());
        store.attach_telemetry(telemetry.clone());
        let total = store.cells().len() as u64;
        let store = Mutex::new(store);
        let stop = AtomicBool::new(false);
        let outcome = run_campaign_telemetry(
            &store,
            &FullRegistry,
            RunnerConfig {
                workers: 2,
                snapshot_every: 0,
                cell_retries: 2,
            },
            &stop,
            Some(&telemetry),
            |_| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        assert_eq!(telemetry.cells_done(), total);
        assert_eq!(telemetry.busy_workers(), 0, "all busy guards released");
        let (fsyncs, p50, _, p99) = telemetry.fsync_summary_ns();
        assert_eq!(fsyncs, total, "one timed fsync per durable cell");
        assert!(p50 > 0 && p99 >= p50);
        // Observation only: the merged report is byte-identical to the
        // untelemetered one-shot batch.
        let merged = merged_report(&store.lock().unwrap()).unwrap();
        let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
        assert_eq!(merged.to_json(), oneshot.to_json());
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Wraps the full registry in estimators that report a lost shard
    /// worker the first `failures` times each cell executes, then run
    /// normally — the unit-level stand-in for a SIGKILLed worker process.
    struct FlakyRegistry {
        failures: u32,
        attempts: std::sync::Arc<Mutex<HashMap<u64, u32>>>,
    }

    impl FlakyRegistry {
        fn failing(failures: u32) -> Self {
            FlakyRegistry {
                failures,
                attempts: std::sync::Arc::new(Mutex::new(HashMap::new())),
            }
        }
    }

    struct FlakyEstimator {
        inner: std::sync::Arc<dyn byzcount_core::sim::Estimator>,
        failures: u32,
        attempts: std::sync::Arc<Mutex<HashMap<u64, u32>>>,
    }

    impl byzcount_core::sim::Estimator for FlakyEstimator {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn estimand(&self) -> byzcount_core::sim::Estimand {
            self.inner.estimand()
        }
        fn run(
            &self,
            ctx: &byzcount_core::sim::SimContext<'_>,
        ) -> Result<byzcount_core::sim::WorkloadRun, SimError> {
            {
                let mut m = self.attempts.lock().unwrap();
                let a = m.entry(ctx.seed).or_insert(0);
                if *a < self.failures {
                    *a += 1;
                    return Err(SimError::Engine(RunError::WorkerLost {
                        shard: 0,
                        during: "arenas",
                        detail: "injected loss".to_string(),
                    }));
                }
            }
            self.inner.run(ctx)
        }
    }

    impl byzcount_core::sim::ScenarioRegistry for FlakyRegistry {
        fn estimator(
            &self,
            spec: &byzcount_core::sim::RunSpec,
            params: &byzcount_core::ProtocolParams,
        ) -> Result<std::sync::Arc<dyn byzcount_core::sim::Estimator>, SimError> {
            let inner = FullRegistry.estimator(spec, params)?;
            // One attempts map shared across estimator instances, keyed by
            // run seed, so retries of the same cell are counted together.
            Ok(std::sync::Arc::new(FlakyEstimator {
                inner,
                failures: self.failures,
                attempts: std::sync::Arc::clone(&self.attempts),
            }))
        }
    }

    #[test]
    fn lost_shard_workers_are_requeued_and_the_job_completes_identically() {
        let root = tmp_root("requeue");
        let spec = CampaignSpec::for_batch("requeue", demo_batch());
        let (store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
        let store = Mutex::new(store);
        let stop = AtomicBool::new(false);
        // Every cell loses its worker once; with retries allowed the job
        // still completes and the merged report is byte-identical to a
        // loss-free one-shot batch (determinism makes retries exact).
        let registry = FlakyRegistry::failing(1);
        let outcome = run_campaign(
            &store,
            &registry,
            RunnerConfig {
                workers: 2,
                snapshot_every: 0,
                cell_retries: 2,
            },
            &stop,
            |_| {},
        )
        .unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        let merged = merged_report(&store.lock().unwrap()).unwrap();
        let oneshot = execute_batch(&spec.batch, &FullRegistry).unwrap();
        assert_eq!(merged.to_json(), oneshot.to_json());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn worker_loss_beyond_the_retry_cap_fails_the_job_cleanly() {
        let root = tmp_root("retry-cap");
        let spec = CampaignSpec::for_batch("retry-cap", demo_batch());
        let (store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
        let store = Mutex::new(store);
        let stop = AtomicBool::new(false);
        let registry = FlakyRegistry::failing(u32::MAX);
        let err = run_campaign(
            &store,
            &registry,
            RunnerConfig {
                workers: 1,
                snapshot_every: 0,
                cell_retries: 1,
            },
            &stop,
            |_| {},
        )
        .unwrap_err();
        assert!(
            matches!(
                &err,
                CampaignError::Sim(SimError::Engine(RunError::WorkerLost { .. }))
            ),
            "expected a clean WorkerLost failure, got {err:?}"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merged_report_requires_completion() {
        let root = tmp_root("incomplete");
        let spec = CampaignSpec::for_batch("inc", demo_batch());
        let (store, _) = CampaignStore::open_or_create(&root, &spec).unwrap();
        let err = merged_report(&store).unwrap_err();
        assert!(matches!(err, CampaignError::State(_)), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
