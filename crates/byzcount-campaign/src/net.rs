//! Transport layer: one address grammar, two socket families.
//!
//! The `unix:<path>` / `host:port` grammar and the [`Listener`] /
//! [`IoStream`] pair started here and moved down into
//! [`netsim_wire::net`] when the distributed engine's shard workers
//! became separate processes — both protocols (the campaign's
//! line-delimited JSON and the engine's binary frames) now share one
//! socket layer, including the stale-Unix-socket reclaim probe and
//! `TCP_NODELAY` on connect/accept.  This module re-exports it; methods
//! return `std::io::Error`, which converts into
//! [`CampaignError`](crate::error::CampaignError) via `?`.

pub use netsim_wire::net::{IoStream, Listener};
