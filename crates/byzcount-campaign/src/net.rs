//! Transport layer: one address grammar, two socket families.
//!
//! Addresses starting with `unix:` name a Unix-domain socket path
//! (`unix:/tmp/byzcount.sock`); anything else is a TCP `host:port`
//! (`127.0.0.1:7171`, with port `0` for an ephemeral port).  Both sides
//! of the protocol are stream-oriented and line-delimited, so the two
//! families are interchangeable behind [`Listener`] / [`IoStream`].

use crate::error::CampaignError;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

/// A bound server socket of either family.
pub enum Listener {
    /// Unix-domain socket.
    Unix(UnixListener),
    /// TCP socket.
    Tcp(TcpListener),
}

/// An accepted or dialed connection of either family.
pub enum IoStream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Listener {
    /// Bind `addr` (`unix:<path>` or `<host>:<port>`).
    ///
    /// A *stale* socket file at a Unix path — left behind by a killed
    /// server, exactly the resume scenario — is removed first.  Staleness
    /// is probed by connecting: if something answers, another server owns
    /// the path and binding fails loudly instead of silently unlinking a
    /// live server's socket out from under it (its clients would hang and
    /// two servers would believe they own the same store).
    pub fn bind(addr: &str) -> Result<Self, CampaignError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            if Path::new(path).exists() {
                if UnixStream::connect(path).is_ok() {
                    return Err(CampaignError::Io(format!(
                        "{addr}: socket is in use by a live server \
                         (refusing to unlink it)"
                    )));
                }
                // Nothing is accepting: a stale leftover; reclaim it.
                std::fs::remove_file(path)?;
            }
            Ok(Listener::Unix(UnixListener::bind(path)?))
        } else {
            Ok(Listener::Tcp(TcpListener::bind(addr)?))
        }
    }

    /// The bound address in the same grammar [`bind`](Listener::bind)
    /// accepts — for TCP this resolves port `0` to the real port.
    pub fn local_addr(&self) -> Result<String, CampaignError> {
        match self {
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| CampaignError::Io("unnamed unix socket".into()))?;
                Ok(format!("unix:{}", path.display()))
            }
            Listener::Tcp(l) => Ok(l.local_addr()?.to_string()),
        }
    }

    /// Switch the accept loop between blocking and polling mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> Result<(), CampaignError> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking)?,
            Listener::Tcp(l) => l.set_nonblocking(nonblocking)?,
        }
        Ok(())
    }

    /// Accept one connection (respects the nonblocking mode: callers see
    /// `WouldBlock` as `Ok(None)`).
    pub fn accept(&self) -> Result<Option<IoStream>, CampaignError> {
        let result = match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| IoStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| IoStream::Tcp(s)),
        };
        match result {
            Ok(stream) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

impl IoStream {
    /// Dial `addr` (same grammar as [`Listener::bind`]).
    pub fn connect(addr: &str) -> Result<Self, CampaignError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(IoStream::Unix(UnixStream::connect(path)?))
        } else {
            Ok(IoStream::Tcp(TcpStream::connect(addr)?))
        }
    }

    /// A second handle on the same connection (reader/writer split).
    pub fn try_clone(&self) -> Result<Self, CampaignError> {
        Ok(match self {
            IoStream::Unix(s) => IoStream::Unix(s.try_clone()?),
            IoStream::Tcp(s) => IoStream::Tcp(s.try_clone()?),
        })
    }

    /// Cap how long a blocking read may stall.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), CampaignError> {
        match self {
            IoStream::Unix(s) => s.set_read_timeout(timeout)?,
            IoStream::Tcp(s) => s.set_read_timeout(timeout)?,
        }
        Ok(())
    }
}

impl Read for IoStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            IoStream::Unix(s) => s.read(buf),
            IoStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for IoStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            IoStream::Unix(s) => s.write(buf),
            IoStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            IoStream::Unix(s) => s.flush(),
            IoStream::Tcp(s) => s.flush(),
        }
    }
}
