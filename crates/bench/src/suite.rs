//! The standardized performance suite behind `byzcount-cli bench`.
//!
//! One suite run executes the Byzantine counting protocol and all four
//! baseline estimators, each over a clean and a faulty network, at every
//! configured size, and reports machine-readable throughput numbers
//! (`BENCH_roundloop.json`): wall time of the protocol execution (node
//! construction + round loop, *excluding* graph generation), rounds/s,
//! messages/s and the process peak RSS.  Reports from two builds of the
//! workspace can be joined with [`BenchReport::apply_baseline`] to track
//! the perf trajectory across PRs — the measurement protocol (spec shapes,
//! seeds, best-of-N timing) is fixed here so the comparison stays fair.

use byzcount_analysis::FullRegistry;
use byzcount_core::sim::{
    AdversarySpec, AttackSpec, EngineSpec, FaultSpec, PlacementSpec, PreparedRun, RunSpec,
    SimError, TopologySpec, WorkloadSpec, SPEC_VERSION,
};
use netsim_runtime::trace::{PhaseProfile, PhaseProfiler};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Expander degree used by every suite spec.
const SUITE_D: usize = 6;
/// Fault exponent for the counting workload's Byzantine budget.
const SUITE_DELTA: f64 = 0.6;
/// Base seed; each entry derives its own spec seed from it.
pub const SUITE_SEED: u64 = 0xBE7C4;

/// Suite configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Network sizes to sweep.
    pub sizes: Vec<usize>,
    /// Base seed.
    pub seed: u64,
    /// Timed executions per entry at small sizes; the minimum wall time is
    /// reported (standard practice for throughput numbers).
    pub repeats: usize,
    /// Engine the suite specs run on (CLI `--shards S` selects the sharded
    /// engine, `--engine async` the event-driven engine with uniform
    /// clocks).  Results are byte-identical across these engines — the
    /// cell seeds, and hence baseline joins, are engine-independent — so
    /// this only changes *how fast* each cell executes.  (Heterogeneous
    /// async clock plans would change the runs themselves and are not
    /// suite configurations.)
    pub engine: EngineSpec,
    /// Attach a per-phase timing profile to every cell.  The profiled
    /// execution is an *extra* run after the timed repeats — the timed
    /// numbers always measure the bare engine with no recorder installed,
    /// so `--profile` never perturbs the throughput columns.
    pub profile: bool,
}

impl BenchConfig {
    /// The standard suite: `n ∈ {1024, 4096, 16384}`, best of 3 (best of 1
    /// at `n ≥ 16384`, where a single run is already seconds long).
    pub fn standard() -> Self {
        BenchConfig {
            sizes: vec![1024, 4096, 16384],
            seed: SUITE_SEED,
            repeats: 3,
            engine: EngineSpec::Sync,
            profile: false,
        }
    }

    /// The CI smoke suite: `n = 256`, one repeat — fast enough to run on
    /// every push, still covering every workload × network combination.
    pub fn smoke() -> Self {
        BenchConfig {
            sizes: vec![256],
            seed: SUITE_SEED,
            repeats: 1,
            engine: EngineSpec::Sync,
            profile: false,
        }
    }

    fn repeats_for(&self, n: usize) -> usize {
        if n >= 16384 {
            1
        } else {
            self.repeats.max(1)
        }
    }
}

/// One measured suite cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Workload name (`byzantine-counting`, `spanning-tree`, …).
    pub workload: String,
    /// `clean` (perfect network) or `faulty` (loss + bounded delay).
    pub network: String,
    /// Network size.
    pub n: usize,
    /// The spec seed used.
    pub seed: u64,
    /// Timed executions this cell ran (minimum reported).
    pub repeats: usize,
    /// Graph generation + placement time, milliseconds (not part of the
    /// throughput numbers; recorded for context).
    pub setup_ms: f64,
    /// Best wall time of one protocol execution, milliseconds.
    pub wall_ms: f64,
    /// Rounds the execution ran.
    pub rounds: u64,
    /// Messages delivered by the execution.
    pub messages_delivered: u64,
    /// Rounds per second (rounds / best wall time).
    pub rounds_per_s: f64,
    /// Delivered messages per second.
    pub messages_per_s: f64,
    /// Process peak RSS after this cell, in kB (`VmHWM`; monotone over the
    /// suite run, so the last entries bound the whole suite).
    pub peak_rss_kb: u64,
    /// `rounds_per_s` of the matching entry in the baseline report, when a
    /// baseline was joined.
    pub baseline_rounds_per_s: Option<f64>,
    /// `rounds_per_s / baseline_rounds_per_s`, when a baseline was joined.
    pub speedup: Option<f64>,
    /// Per-phase timing profile from an extra profiled execution, when the
    /// suite ran with profiling on.  `None` in plain runs; reports from
    /// before the field existed (no `phases` key at all) still parse.
    pub phases: Option<PhaseProfile>,
}

/// The machine-readable suite report (`BENCH_roundloop.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema version.
    pub schema: u32,
    /// Suite name.
    pub suite: String,
    /// Sizes swept.
    pub sizes: Vec<usize>,
    /// Base seed.
    pub seed: u64,
    /// Which engine executed the suite (`sync` / `sharded-S` / `async` /
    /// `sharded-async-S`).
    /// Absent in reports from before the engine knob existed, which all
    /// ran the classic engine.  Results are engine-independent by
    /// contract (heterogeneous async clock plans, which would break that
    /// contract, are rejected by [`run_suite`]), so a cross-engine
    /// `apply_baseline` join is legitimate — it measures the engines'
    /// relative throughput — but the report must say so.
    pub engine: Option<String>,
    /// Label of the joined baseline build, when one was given.
    pub baseline_label: Option<String>,
    /// Every measured cell, in suite order (size-major, workload-minor,
    /// clean before faulty).
    pub entries: Vec<BenchEntry>,
}

/// Current schema of [`BenchReport`].
pub const BENCH_SCHEMA: u32 = 1;

/// The five suite workloads, in fixed order.
pub fn suite_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Byzantine,
        WorkloadSpec::GeometricSupport {
            ttl: None,
            attack: AttackSpec::None,
        },
        WorkloadSpec::ExponentialSupport {
            ttl: None,
            attack: AttackSpec::None,
        },
        WorkloadSpec::SpanningTree {
            max_rounds: None,
            attack: AttackSpec::None,
        },
        WorkloadSpec::FloodDiameter {
            ttl: None,
            attack: AttackSpec::None,
        },
    ]
}

/// The suite's imperfect network: light i.i.d. loss plus bounded delay —
/// enough traffic through the loss/deferral paths to price them, without
/// changing which code dominates.
pub fn suite_fault() -> FaultSpec {
    FaultSpec::Compose(vec![
        FaultSpec::Loss { rate: 0.05 },
        FaultSpec::Delay {
            max_delay: 2,
            rate: 0.2,
        },
    ])
}

/// The spec one suite cell executes.
///
/// Counting runs Algorithm 2 on the full small-world overlay under the
/// paper's Byzantine budget (honest-behaving adversary, so the measurement
/// is the protocol loop, not adversary bookkeeping); baselines run on the
/// expander `H`, as everywhere else in the workspace.
pub fn suite_spec(workload: &WorkloadSpec, n: usize, faulty: bool, seed: u64) -> RunSpec {
    suite_spec_on(workload, n, faulty, seed, EngineSpec::Sync)
}

/// [`suite_spec`] with an explicit engine selection.
pub fn suite_spec_on(
    workload: &WorkloadSpec,
    n: usize,
    faulty: bool,
    seed: u64,
    engine: EngineSpec,
) -> RunSpec {
    let counting = workload.is_counting();
    RunSpec {
        version: SPEC_VERSION,
        engine,
        topology: if counting {
            TopologySpec::SmallWorld { n, d: SUITE_D }
        } else {
            TopologySpec::SmallWorldH { n, d: SUITE_D }
        },
        workload: workload.clone(),
        placement: if counting {
            PlacementSpec::RandomBudget { delta: SUITE_DELTA }
        } else {
            PlacementSpec::None
        },
        adversary: if counting {
            AdversarySpec::HonestBehaving
        } else {
            AdversarySpec::Null
        },
        fault: if faulty {
            suite_fault()
        } else {
            FaultSpec::None
        },
        params: byzcount_core::sim::ParamsSpec::Derived {
            delta: SUITE_DELTA,
            epsilon: 0.1,
        },
        seed,
        max_rounds: None,
    }
}

/// The spec seed of one suite cell — the workspace-wide identity-derived
/// [`cell_seed`] helper, re-exported from
/// `byzcount_core::sim` (where the campaign service shares it) so `--sizes`
/// subsets, reorderings and future suite extensions never change an
/// existing cell's seed — which is what keeps `apply_baseline` joins
/// comparing runs of the *same* topology and placement.
pub use byzcount_core::sim::cell_seed;

/// The `(workload, network, n)` triples a complete suite must contain, in
/// suite order.
pub fn expected_cells(sizes: &[usize]) -> Vec<(String, String, usize)> {
    let mut cells = Vec::new();
    for &n in sizes {
        for workload in suite_workloads() {
            for network in ["clean", "faulty"] {
                cells.push((workload.name().to_string(), network.to_string(), n));
            }
        }
    }
    cells
}

/// Read the process peak RSS (`VmHWM`) in kB; 0 where unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|kb| kb.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Run the whole suite.  `progress` receives one line per finished cell.
pub fn run_suite(
    cfg: &BenchConfig,
    mut progress: impl FnMut(&BenchEntry),
) -> Result<BenchReport, SimError> {
    // The suite's cells are defined over the synchronous model: a
    // heterogeneous clock plan would change the runs themselves, and
    // `apply_baseline` would then join semantically different executions
    // on the engine-independent cell seeds.  Refuse up front.
    if let netsim_runtime::EngineKind::Async { clocks }
    | netsim_runtime::EngineKind::ShardedAsync { clocks, .. } = cfg.engine.kind()
    {
        if !clocks.is_synchronous() {
            return Err(SimError::Spec(format!(
                "the bench suite only runs synchronous engines; async clock \
                 plan `{}` would change the measured runs themselves",
                clocks.describe()
            )));
        }
    }
    let mut entries = Vec::new();
    for &n in &cfg.sizes {
        for workload in suite_workloads() {
            for (faulty, network) in [(false, "clean"), (true, "faulty")] {
                let seed = cell_seed(cfg.seed, workload.name(), network, n);
                let spec = suite_spec_on(&workload, n, faulty, seed, cfg.engine);
                let setup_start = Instant::now();
                let prepared = PreparedRun::new(&spec)?;
                let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;
                let repeats = cfg.repeats_for(n);
                let mut best = f64::INFINITY;
                let mut report = None;
                for _ in 0..repeats {
                    let start = Instant::now();
                    let run = prepared.execute(&FullRegistry)?;
                    let elapsed = start.elapsed().as_secs_f64();
                    if elapsed < best {
                        best = elapsed;
                    }
                    report = Some(run);
                }
                let report = report.expect("at least one repeat");
                // Profiling runs *after* the timed repeats on a fresh
                // profiler, so the throughput columns always measure the
                // bare engine (recorder checks only, no recorder work).
                let phases = if cfg.profile {
                    let profiler = PhaseProfiler::new();
                    let profiled = prepared.execute_recorded(&FullRegistry, Some(&profiler))?;
                    debug_assert_eq!(
                        profiled.rounds, report.rounds,
                        "recorders are observation-only"
                    );
                    Some(profiler.report())
                } else {
                    None
                };
                let secs = best.max(1e-9);
                let entry = BenchEntry {
                    workload: workload.name().to_string(),
                    network: network.to_string(),
                    n,
                    seed,
                    repeats,
                    setup_ms,
                    wall_ms: best * 1e3,
                    rounds: report.rounds,
                    messages_delivered: report.messages_delivered,
                    rounds_per_s: report.rounds as f64 / secs,
                    messages_per_s: report.messages_delivered as f64 / secs,
                    peak_rss_kb: peak_rss_kb(),
                    baseline_rounds_per_s: None,
                    speedup: None,
                    phases,
                };
                progress(&entry);
                entries.push(entry);
            }
        }
    }
    Ok(BenchReport {
        schema: BENCH_SCHEMA,
        suite: "roundloop".to_string(),
        sizes: cfg.sizes.clone(),
        seed: cfg.seed,
        engine: Some(cfg.engine.name()),
        baseline_label: None,
        entries,
    })
}

impl BenchReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BenchReport serialization cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: BenchReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if report.schema > BENCH_SCHEMA {
            return Err(format!(
                "bench report schema {} is newer than supported {BENCH_SCHEMA}",
                report.schema
            ));
        }
        Ok(report)
    }

    /// Look up a cell.
    pub fn entry(&self, workload: &str, network: &str, n: usize) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .find(|e| e.workload == workload && e.network == network && e.n == n)
    }

    /// Check the report contains every cell of the suite it claims to have
    /// swept, with sane numbers.
    pub fn validate_complete(&self) -> Result<(), String> {
        for (workload, network, n) in expected_cells(&self.sizes) {
            let entry = self
                .entry(&workload, &network, n)
                .ok_or_else(|| format!("missing suite entry {workload}/{network}/n={n}"))?;
            if !(entry.wall_ms.is_finite() && entry.wall_ms > 0.0) {
                return Err(format!(
                    "suite entry {workload}/{network}/n={n} has bad wall_ms {}",
                    entry.wall_ms
                ));
            }
            if entry.rounds == 0 {
                return Err(format!(
                    "suite entry {workload}/{network}/n={n} executed zero rounds"
                ));
            }
        }
        Ok(())
    }

    /// Join a baseline report (same suite, typically from the previous
    /// build): matching entries gain `baseline_rounds_per_s` and `speedup`.
    ///
    /// When the baseline recorded which engine produced it, that engine is
    /// folded into `baseline_label`, so a cross-engine join (a legitimate
    /// sharded-vs-sync throughput comparison) is distinguishable from a
    /// same-engine regression join by reading the report alone.
    pub fn apply_baseline(&mut self, baseline: &BenchReport, label: &str) {
        self.baseline_label = Some(match &baseline.engine {
            Some(engine) => format!("{label} [engine: {engine}]"),
            None => label.to_string(),
        });
        for entry in &mut self.entries {
            if let Some(base) = baseline.entry(&entry.workload, &entry.network, entry.n) {
                // Only join cells that executed the same spec: the seed is
                // identity-derived ([`cell_seed`]), so a mismatch means the
                // baseline measured a different topology/placement and a
                // "speedup" against it would be meaningless.
                if base.seed != entry.seed {
                    continue;
                }
                entry.baseline_rounds_per_s = Some(base.rounds_per_s);
                if base.rounds_per_s > 0.0 {
                    entry.speedup = Some(entry.rounds_per_s / base.rounds_per_s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_is_complete_and_ordered() {
        let cells = expected_cells(&[1024, 4096]);
        assert_eq!(cells.len(), 2 * 5 * 2);
        assert_eq!(
            cells[0],
            ("byzantine-counting".into(), "clean".into(), 1024)
        );
        assert_eq!(
            cells[1],
            ("byzantine-counting".into(), "faulty".into(), 1024)
        );
        assert_eq!(cells[10].2, 4096, "size-major order");
    }

    #[test]
    fn suite_specs_validate() {
        for workload in suite_workloads() {
            for faulty in [false, true] {
                let spec = suite_spec(&workload, 256, faulty, 1);
                spec.validate().expect("suite specs must be valid");
            }
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let entry = BenchEntry {
            workload: "byzantine-counting".into(),
            network: "clean".into(),
            n: 64,
            seed: 3,
            repeats: 1,
            setup_ms: 1.0,
            wall_ms: 2.0,
            rounds: 10,
            messages_delivered: 100,
            rounds_per_s: 5000.0,
            messages_per_s: 50000.0,
            peak_rss_kb: 1234,
            baseline_rounds_per_s: None,
            speedup: None,
            phases: None,
        };
        let mut entries = Vec::new();
        for (workload, network, n) in expected_cells(&[64]) {
            entries.push(BenchEntry {
                workload,
                network,
                n,
                ..entry.clone()
            });
        }
        let report = BenchReport {
            schema: BENCH_SCHEMA,
            suite: "roundloop".into(),
            sizes: vec![64],
            seed: 3,
            engine: Some("sync".into()),
            baseline_label: None,
            entries,
        };
        report.validate_complete().expect("complete");
        let back = BenchReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);

        let mut incomplete = report.clone();
        incomplete.entries.pop();
        assert!(incomplete.validate_complete().is_err());
    }

    #[test]
    fn reports_without_a_phases_key_still_parse() {
        // The committed BENCH_roundloop.json predates the `phases` field;
        // dropping the key entirely must deserialize as `None`.
        let entry = BenchEntry {
            workload: "byzantine-counting".into(),
            network: "clean".into(),
            n: 64,
            seed: 3,
            repeats: 1,
            setup_ms: 1.0,
            wall_ms: 2.0,
            rounds: 10,
            messages_delivered: 100,
            rounds_per_s: 5000.0,
            messages_per_s: 50000.0,
            peak_rss_kb: 1234,
            baseline_rounds_per_s: None,
            speedup: None,
            phases: None,
        };
        let report = BenchReport {
            schema: BENCH_SCHEMA,
            suite: "roundloop".into(),
            sizes: vec![64],
            seed: 3,
            engine: Some("sync".into()),
            baseline_label: None,
            entries: vec![entry],
        };
        let stripped = report
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"phases\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!stripped.contains("phases"));
        let back = BenchReport::from_json(&stripped).expect("old-shape report must parse");
        assert_eq!(back, report);
    }

    #[test]
    fn baselines_join_by_cell() {
        let mut report = BenchReport {
            schema: BENCH_SCHEMA,
            suite: "roundloop".into(),
            sizes: vec![64],
            seed: 3,
            engine: Some("sync".into()),
            baseline_label: None,
            entries: vec![BenchEntry {
                workload: "byzantine-counting".into(),
                network: "clean".into(),
                n: 64,
                seed: 3,
                repeats: 1,
                setup_ms: 1.0,
                wall_ms: 2.0,
                rounds: 10,
                messages_delivered: 100,
                rounds_per_s: 6000.0,
                messages_per_s: 50000.0,
                peak_rss_kb: 0,
                baseline_rounds_per_s: None,
                speedup: None,
                phases: None,
            }],
        };
        let mut baseline = report.clone();
        baseline.entries[0].rounds_per_s = 4000.0;
        report.apply_baseline(&baseline, "pre-refactor");
        assert_eq!(
            report.baseline_label.as_deref(),
            Some("pre-refactor [engine: sync]"),
            "the baseline's engine must be visible in the joined report"
        );
        assert_eq!(report.entries[0].baseline_rounds_per_s, Some(4000.0));
        assert!((report.entries[0].speedup.unwrap() - 1.5).abs() < 1e-12);

        // A baseline cell measured under a different spec seed must not be
        // joined — it ran a different topology/placement.
        let mut other_seed = baseline.clone();
        other_seed.entries[0].seed ^= 1;
        let mut fresh = report.clone();
        fresh.entries[0].baseline_rounds_per_s = None;
        fresh.entries[0].speedup = None;
        fresh.apply_baseline(&other_seed, "mismatched");
        assert_eq!(fresh.entries[0].baseline_rounds_per_s, None);
        assert_eq!(fresh.entries[0].speedup, None);
    }

    #[test]
    fn cell_seeds_are_identity_derived_not_position_derived() {
        // The same cell gets the same seed no matter which sweep it is part
        // of — that is what makes baseline joins across `--sizes` subsets
        // compare identical specs.
        let full = cell_seed(SUITE_SEED, "byzantine-counting", "clean", 4096);
        assert_eq!(
            full,
            cell_seed(SUITE_SEED, "byzantine-counting", "clean", 4096)
        );
        // Distinct cells get distinct seeds (workload, network and n all
        // feed the hash).
        assert_ne!(
            full,
            cell_seed(SUITE_SEED, "byzantine-counting", "faulty", 4096)
        );
        assert_ne!(
            full,
            cell_seed(SUITE_SEED, "byzantine-counting", "clean", 1024)
        );
        assert_ne!(full, cell_seed(SUITE_SEED, "spanning-tree", "clean", 4096));
        assert_ne!(
            full,
            cell_seed(SUITE_SEED ^ 1, "byzantine-counting", "clean", 4096)
        );
        // Regression lock on the promotion to `byzcount_core::sim`: the
        // shared helper must produce exactly the values this suite produced
        // when the definition lived here, or historical baseline joins
        // would silently stop matching.
        assert_eq!(full, 0x54db5256f1e5bc02);
        assert_eq!(
            cell_seed(SUITE_SEED, "spanning-tree", "faulty", 256),
            0xfb0cb0f2a5c1bcda
        );
    }

    #[test]
    fn heterogeneous_clock_plans_are_rejected_by_the_suite() {
        // The documented invariant: only synchronous engines may run the
        // suite, because apply_baseline joins on engine-independent cell
        // seeds and a heterogeneous clock plan changes the runs
        // themselves.
        use byzcount_core::sim::ClockPlan;
        let mut cfg = BenchConfig::smoke();
        cfg.engine = EngineSpec::Async {
            clocks: ClockPlan::Stratified {
                every: 4,
                period: 3,
            },
        };
        let err = run_suite(&cfg, |_| {}).expect_err("must refuse");
        assert!(err.to_string().contains("synchronous"), "{err}");
        // The sharded-async engine carries the same clock knob and is
        // guarded the same way.
        cfg.engine = EngineSpec::ShardedAsync {
            shards: 2,
            clocks: ClockPlan::Jittered { max_period: 4 },
        };
        let err = run_suite(&cfg, |_| {}).expect_err("must refuse");
        assert!(err.to_string().contains("synchronous"), "{err}");
        // Uniform clocks keep the byte-identity contract and pass the
        // guard (the suite itself is exercised end-to-end by the CI
        // async bench smoke, not here — it is seconds of protocol work).
        assert!(ClockPlan::Uniform.is_synchronous());
    }

    #[test]
    fn smoke_config_is_small() {
        let cfg = BenchConfig::smoke();
        assert_eq!(cfg.sizes, vec![256]);
        assert_eq!(cfg.repeats_for(256), 1);
        assert_eq!(BenchConfig::standard().repeats_for(16384), 1);
        assert_eq!(BenchConfig::standard().repeats_for(4096), 3);
    }
}
