//! Shared helpers for the benchmark targets and experiment binaries, plus
//! the standardized [`suite`] behind `byzcount-cli bench`.

pub mod suite;

use byzcount_adversary::{AdversaryKnowledge, CombinedAdversary, Placement};
use byzcount_core::sim::{AdversarySpec, PlacementSpec, Simulation, TopologySpec, WorkloadSpec};
use byzcount_core::{run_counting_with, CountingOutcome, ProtocolParams};
use netsim_graph::SmallWorldNetwork;

/// A builder-API simulation of Algorithm 2 under the combined attack — the
/// canonical "how much does a full run cost" scenario.
pub fn combined_attack_sim(n: usize, d: usize, seed: u64) -> Simulation {
    Simulation::builder()
        .topology(TopologySpec::SmallWorld { n, d })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta: 0.6 })
        .adversary(AdversarySpec::Combined)
        .derived_params(0.6, 0.1)
        .seed(seed)
        .build()
        .expect("combined-attack spec")
}

/// Build a network, parameters and the paper's Byzantine budget for a bench.
pub fn bench_setup(
    n: usize,
    d: usize,
    delta: f64,
    seed: u64,
) -> (SmallWorldNetwork, ProtocolParams, Placement) {
    let net = SmallWorldNetwork::generate_seeded(n, d, seed).expect("network");
    let params = ProtocolParams::for_network_default_expansion(&net, delta, 0.1);
    let placement = Placement::random_budget(n, delta, seed ^ 0xFACE);
    (net, params, placement)
}

/// One full Algorithm-2 run under the combined adversary.
pub fn run_combined(n: usize, d: usize, seed: u64) -> CountingOutcome {
    let (net, params, placement) = bench_setup(n, d, 0.6, seed);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
    run_counting_with(
        &net,
        &params,
        placement.mask(),
        CombinedAdversary::new(knowledge),
        seed ^ 0xBEEF,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_is_consistent() {
        let (net, params, placement) = bench_setup(256, 6, 0.6, 1);
        assert_eq!(net.len(), 256);
        assert_eq!(params.d, 6);
        assert_eq!(placement.count(), (256f64).powf(0.4).floor() as usize);
    }
}
