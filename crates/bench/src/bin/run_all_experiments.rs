//! Runs every experiment (E1–E11) and prints the Markdown tables recorded in
//! EXPERIMENTS.md.  Pass `--quick` for a fast smoke run.
use byzcount_analysis::experiments::{run_all, ExperimentConfig};

fn main() {
    let cfg = if std::env::args().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    };
    for table in run_all(&cfg) {
        println!("{}", table.to_markdown());
    }
}
