//! Experiment e3: regenerates the corresponding table of EXPERIMENTS.md.
//! Equivalent to `byzcount-cli e3 --standard`.
use byzcount_analysis::experiments::{self, ExperimentConfig};

fn main() {
    let cfg = if std::env::args().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    };
    let n_big = cfg.n_values.last().copied().unwrap_or(1024);
    let n_small = cfg.n_values.first().copied().unwrap_or(512);
    let table = match "e3" {
        "e1" => experiments::exp_theorem1(&cfg),
        "e2" => experiments::exp_rounds(&cfg),
        "e3" => experiments::exp_approx_factor(&cfg, &[6, 8, 10], n_small),
        "e4" => experiments::exp_baselines(&cfg, n_big),
        "e5" => experiments::exp_structure(&cfg),
        "e6" => experiments::exp_expander(&cfg),
        "e7" => experiments::exp_discovery(&cfg),
        "e8" => experiments::exp_fakechain(&cfg, n_big.min(2048)),
        "e9" => experiments::exp_core(&cfg, n_big.min(2048)),
        "e10" => experiments::exp_phases(&cfg, n_big.min(2048)),
        _ => experiments::exp_placement(&cfg, n_big.min(2048)),
    };
    println!("{}", table.to_markdown());
}
