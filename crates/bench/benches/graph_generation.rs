//! E12 (part 1): cost of generating H(n,d) and the small-world overlay G.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim_graph::{HGraph, SmallWorldConfig, SmallWorldNetwork};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generation");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::new("hgraph_d8", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                HGraph::generate(n, 8, &mut rng).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("small_world_d6", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                SmallWorldNetwork::generate(SmallWorldConfig::new(n, 6), &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
