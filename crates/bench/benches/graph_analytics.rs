//! E5/E6 cost: locally-tree-like classification, clustering, spectral gap.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim_graph::expansion::spectral_gap;
use netsim_graph::metrics::average_clustering;
use netsim_graph::treelike::classify_all;
use netsim_graph::SmallWorldNetwork;

fn bench_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_analytics");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let net = SmallWorldNetwork::generate_seeded(n, 6, 3).unwrap();
        group.bench_with_input(
            BenchmarkId::new("tree_like_classification", n),
            &net,
            |b, net| b.iter(|| classify_all(net.h(), Some(1))),
        );
        group.bench_with_input(BenchmarkId::new("clustering_G", n), &net, |b, net| {
            b.iter(|| average_clustering(net.g()))
        });
        group.bench_with_input(BenchmarkId::new("spectral_gap_H", n), &net, |b, net| {
            b.iter(|| spectral_gap(net.h().csr(), 100, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
