//! E4 cost: the naive estimators vs the Byzantine-tolerant protocol, run
//! through the unified `Simulation` builder.
use byzcount_analysis::RunSimulation;
use byzcount_core::sim::{AttackSpec, Simulation, TopologySpec, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn baseline_sim(n: usize, workload: WorkloadSpec) -> Simulation {
    Simulation::builder()
        .topology(TopologySpec::SmallWorldH { n, d: 8 })
        .workload(workload)
        .seed(3)
        .build()
        .expect("baseline spec")
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let geometric = baseline_sim(
            n,
            WorkloadSpec::GeometricSupport {
                ttl: None,
                attack: AttackSpec::None,
            },
        );
        group.bench_with_input(BenchmarkId::new("geometric_support", n), &n, |b, _| {
            b.iter(|| geometric.run().expect("geometric run"))
        });
        let spanning = baseline_sim(
            n,
            WorkloadSpec::SpanningTree {
                max_rounds: None,
                attack: AttackSpec::None,
            },
        );
        group.bench_with_input(BenchmarkId::new("spanning_tree_count", n), &n, |b, _| {
            b.iter(|| spanning.run().expect("spanning-tree run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
