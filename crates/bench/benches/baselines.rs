//! E4 cost: the naive estimators vs the Byzantine-tolerant protocol.
use byzcount_baselines::{run_geometric_support, run_spanning_tree_count, BaselineAttack};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim_graph::SmallWorldNetwork;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let net = SmallWorldNetwork::generate_seeded(n, 8, 7).unwrap();
        let byz = vec![false; n];
        let ttl = (3.0 * (n as f64).log2()).ceil() as u64 + 5;
        group.bench_with_input(BenchmarkId::new("geometric_support", n), &n, |b, _| {
            b.iter(|| run_geometric_support(net.h().csr(), &byz, BaselineAttack::None, ttl, 3))
        });
        group.bench_with_input(BenchmarkId::new("spanning_tree_count", n), &n, |b, _| {
            b.iter(|| run_spanning_tree_count(net.h().csr(), &byz, BaselineAttack::None, 4 * ttl, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
