//! E2: rounds grow like log^3 n — measured via wall-clock of honest runs
//! (the round counts themselves are printed by `byzcount-cli e2`).
use byzcount_core::{run_basic_counting, ProtocolParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim_graph::SmallWorldNetwork;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds_scaling");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let net = SmallWorldNetwork::generate_seeded(n, 6, 5).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        group.bench_with_input(BenchmarkId::new("algorithm1_honest", n), &n, |b, _| {
            b.iter(|| run_basic_counting(&net, &params, 11))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
