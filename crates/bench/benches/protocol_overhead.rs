//! E12 (part 2): what Byzantine tolerance costs — Algorithm 1 vs Algorithm 2
//! on the same fault-free network.
use byzcount_core::{run_basic_counting, run_counting_with, ProtocolParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim_graph::SmallWorldNetwork;
use netsim_runtime::NullAdversary;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_overhead");
    group.sample_size(10);
    for &n in &[512usize, 1024] {
        let net = SmallWorldNetwork::generate_seeded(n, 6, 9).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let byz = vec![false; n];
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| run_basic_counting(&net, &params, 13))
        });
        group.bench_with_input(BenchmarkId::new("algorithm2", n), &n, |b, _| {
            b.iter(|| run_counting_with(&net, &params, &byz, NullAdversary, 13))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
