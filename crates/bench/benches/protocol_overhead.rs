//! E12 (part 2): what Byzantine tolerance costs — Algorithm 1 vs Algorithm 2
//! on the same fault-free network — and what the unified `Simulation`
//! builder costs compared to driving the engine directly.
//!
//! The builder-vs-direct pair runs the *identical* pipeline (topology
//! generation + protocol execution) so the difference isolates the API
//! layer: spec validation, seed-stream derivation, placement
//! materialization and report assembly.  It should be lost in the noise of
//! the protocol run itself.
use byzcount_analysis::RunSimulation;
use byzcount_core::sim::{FaultSpec, Simulation, TopologySpec, WorkloadSpec};
use byzcount_core::{run_basic_counting, run_counting_faulty, run_counting_with, ProtocolParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim_graph::SmallWorldNetwork;
use netsim_runtime::{NoFaults, NullAdversary};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_overhead");
    group.sample_size(10);
    for &n in &[512usize, 1024] {
        let net = SmallWorldNetwork::generate_seeded(n, 6, 9).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let byz = vec![false; n];
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| run_basic_counting(&net, &params, 13))
        });
        group.bench_with_input(BenchmarkId::new("algorithm2", n), &n, |b, _| {
            b.iter(|| run_counting_with(&net, &params, &byz, NullAdversary, 13))
        });
    }
    group.finish();

    // Builder vs direct: same end-to-end pipeline, measured both ways.
    let mut group = c.benchmark_group("builder_vs_direct");
    group.sample_size(10);
    for &n in &[512usize, 1024] {
        group.bench_with_input(BenchmarkId::new("direct_pipeline", n), &n, |b, &n| {
            b.iter(|| {
                // Mirror exactly what the builder does: generate the
                // topology, derive parameters, run Algorithm 2.
                let net = SmallWorldNetwork::generate_seeded(n, 6, 13).unwrap();
                let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
                let byz = vec![false; n];
                run_counting_with(&net, &params, &byz, NullAdversary, 13)
            })
        });
        let sim = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n, d: 6 })
            .workload(WorkloadSpec::Byzantine)
            .seed(13)
            .build()
            .expect("builder spec");
        group.bench_with_input(BenchmarkId::new("builder_pipeline", n), &n, |b, _| {
            b.iter(|| sim.run().expect("builder run"))
        });
    }
    group.finish();

    // The fault subsystem must cost nothing when disabled.  Three rungs of
    // the same engine round loop:
    //   no_fault_layer  — no plan installed (the pre-fault-layer path);
    //   spec_fault_none — `FaultSpec::None` through the spec layer, which
    //                     resolves to "no plan installed";
    //   noop_plan       — a do-nothing plan *installed*, pricing the
    //                     per-envelope dynamic dispatch the spec layer
    //                     avoids for `FaultSpec::None`.
    let mut group = c.benchmark_group("fault_layer_overhead");
    group.sample_size(10);
    for &n in &[512usize, 1024] {
        let net = SmallWorldNetwork::generate_seeded(n, 6, 9).unwrap();
        let params = ProtocolParams::for_network_default_expansion(&net, 0.6, 0.1);
        let byz = vec![false; n];
        group.bench_with_input(BenchmarkId::new("no_fault_layer", n), &n, |b, _| {
            b.iter(|| run_counting_with(&net, &params, &byz, NullAdversary, 13))
        });
        let honest = vec![true; n];
        group.bench_with_input(BenchmarkId::new("spec_fault_none", n), &n, |b, _| {
            b.iter(|| {
                assert!(FaultSpec::None.build_plan(n, &honest, 13).is_none());
                run_counting_faulty(&net, &params, &byz, NullAdversary, true, 13, None, None)
            })
        });
        group.bench_with_input(BenchmarkId::new("noop_plan", n), &n, |b, _| {
            b.iter(|| {
                run_counting_faulty(
                    &net,
                    &params,
                    &byz,
                    NullAdversary,
                    true,
                    13,
                    None,
                    Some(Box::new(NoFaults)),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
