//! E1 cost: full Algorithm-2 runs under the combined adversary, through the
//! unified `Simulation` builder.
use bench::combined_attack_sim;
use byzcount_analysis::RunSimulation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("byzantine_counting");
    group.sample_size(10);
    for &n in &[256usize, 512, 1024] {
        let sim = combined_attack_sim(n, 6, 42);
        group.bench_with_input(
            BenchmarkId::new("algorithm2_combined_adv", n),
            &n,
            |b, _| b.iter(|| sim.run().expect("combined-attack run")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
