//! Microbenchmark of the two Byzantine-specific mechanisms: neighbourhood
//! reconstruction (Lemma 3) and geometric color sampling.
use byzcount_core::color::sample_color;
use byzcount_core::discovery::reconstruct;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim_graph::{NodeId, SmallWorldNetwork};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    for &d in &[6usize, 8] {
        let net = SmallWorldNetwork::generate_seeded(4096, d, 21).unwrap();
        let v = NodeId(0);
        let reports: HashMap<u32, Vec<u32>> = net
            .g_neighbors(v)
            .iter()
            .map(|&u| (u, net.g_neighbors(NodeId(u)).to_vec()))
            .collect();
        group.bench_with_input(BenchmarkId::new("reconstruct_k_ball", d), &d, |b, _| {
            b.iter(|| reconstruct(v.0, net.g_neighbors(v), &reports))
        });
    }
    group.bench_function("sample_color", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        b.iter(|| sample_color(&mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
