//! Campaign execution: the full [`ScenarioRegistry`] and the convenience
//! `.run()` / `.run_batch()` methods on [`Simulation`].
//!
//! The [`FullRegistry`] interprets *every* spec variant: both counting
//! protocols with any [`AdversarySpec`](byzcount_core::sim::AdversarySpec) (via
//! [`byzcount_adversary::SpecAdversaryFactory`]) and all four baseline
//! workloads (via `byzcount_baselines::workloads`).  [`execute`] /
//! [`execute_batch`] run serialized specs end-to-end — this is what the
//! `byzcount-cli run` subcommand calls.

use byzcount_adversary::SpecAdversaryFactory;
use byzcount_baselines::workloads::{
    ExponentialSupportWorkload, FloodDiameterWorkload, GeometricSupportWorkload,
    SpanningTreeWorkload,
};
use byzcount_core::sim::{
    execute_batch as core_execute_batch, execute_batch_recorded as core_execute_batch_recorded,
    execute_batch_workers as core_execute_batch_workers, execute_spec as core_execute_spec,
    execute_spec_recorded as core_execute_spec_recorded,
    execute_spec_workers as core_execute_spec_workers, BatchReport, BatchSpec, CountingEstimator,
    Estimator, Recorder, RunReport, RunSpec, ScenarioRegistry, SimError, Simulation, WorkloadSpec,
};
use byzcount_core::ProtocolParams;
use std::sync::Arc;

/// The registry that understands every workload and adversary in the
/// workspace.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullRegistry;

impl ScenarioRegistry for FullRegistry {
    fn estimator(
        &self,
        spec: &RunSpec,
        params: &ProtocolParams,
    ) -> Result<Arc<dyn Estimator>, SimError> {
        let adversary = Arc::new(SpecAdversaryFactory::new(spec.adversary));
        Ok(match spec.workload {
            WorkloadSpec::Basic => Arc::new(CountingEstimator::basic(*params, adversary)),
            WorkloadSpec::Byzantine => Arc::new(CountingEstimator::byzantine(*params, adversary)),
            WorkloadSpec::GeometricSupport { ttl, attack } => {
                Arc::new(GeometricSupportWorkload { ttl, attack })
            }
            WorkloadSpec::ExponentialSupport { ttl, attack } => {
                Arc::new(ExponentialSupportWorkload { ttl, attack })
            }
            WorkloadSpec::SpanningTree { max_rounds, attack } => {
                Arc::new(SpanningTreeWorkload { max_rounds, attack })
            }
            WorkloadSpec::FloodDiameter { ttl, attack } => {
                Arc::new(FloodDiameterWorkload { ttl, attack })
            }
        })
    }
}

/// Execute one [`RunSpec`] with the full registry.
pub fn execute(spec: &RunSpec) -> Result<RunReport, SimError> {
    core_execute_spec(spec, &FullRegistry)
}

/// Execute a [`BatchSpec`] with the full registry (parallel over runs).
pub fn execute_batch(spec: &BatchSpec) -> Result<BatchReport, SimError> {
    core_execute_batch(spec, &FullRegistry)
}

/// [`execute`] with an optional [`Recorder`] observing the run
/// (observation-only: the report is byte-identical either way).
pub fn execute_recorded(
    spec: &RunSpec,
    recorder: Option<&dyn Recorder>,
) -> Result<RunReport, SimError> {
    core_execute_spec_recorded(spec, &FullRegistry, recorder)
}

/// [`execute_batch`] with an optional [`Recorder`] observing every run.
pub fn execute_batch_recorded(
    spec: &BatchSpec,
    recorder: Option<&dyn Recorder>,
) -> Result<BatchReport, SimError> {
    core_execute_batch_recorded(spec, &FullRegistry, recorder)
}

/// [`execute_recorded`] dialing a remote shard-worker fleet for
/// distributed-engine runs (in-process fallback when `workers` is
/// empty).  This is what `byzcount-cli run --workers` calls; reports
/// are byte-identical across transports.
pub fn execute_workers(
    spec: &RunSpec,
    recorder: Option<&dyn Recorder>,
    workers: &[String],
) -> Result<RunReport, SimError> {
    core_execute_spec_workers(spec, &FullRegistry, recorder, workers)
}

/// [`execute_batch_recorded`] dialing a remote shard-worker fleet (see
/// [`execute_workers`]).
pub fn execute_batch_workers(
    spec: &BatchSpec,
    recorder: Option<&dyn Recorder>,
    workers: &[String],
) -> Result<BatchReport, SimError> {
    core_execute_batch_workers(spec, &FullRegistry, recorder, workers)
}

/// `.run()` / `.run_batch()` on [`Simulation`], wired to the full registry.
pub trait RunSimulation {
    /// Execute a single run.
    fn run(&self) -> Result<RunReport, SimError>;
    /// Execute the multi-seed / multi-size batch.
    fn run_batch(&self) -> Result<BatchReport, SimError>;
}

impl RunSimulation for Simulation {
    fn run(&self) -> Result<RunReport, SimError> {
        self.run_with(&FullRegistry)
    }

    fn run_batch(&self) -> Result<BatchReport, SimError> {
        self.run_batch_with(&FullRegistry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcount_core::sim::{AdversarySpec, AttackSpec, PlacementSpec, SeedPolicy, TopologySpec};

    #[test]
    fn full_registry_runs_byzantine_counting_under_attack() {
        let report = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n: 256, d: 6 })
            .placement(PlacementSpec::RandomBudget { delta: 0.6 })
            .adversary(AdversarySpec::Combined)
            .seed(11)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(report.completed);
        assert!(report.byzantine_count > 0);
        let good = report.good_fraction().expect("counting workload");
        assert!(
            good > 0.5,
            "good fraction {good} too low under combined attack"
        );
    }

    #[test]
    fn full_registry_runs_baselines() {
        let report = Simulation::builder()
            .topology(TopologySpec::SmallWorldH { n: 256, d: 6 })
            .workload(WorkloadSpec::SpanningTree {
                max_rounds: None,
                attack: AttackSpec::None,
            })
            .seed(5)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.truth, Some(256.0));
    }

    #[test]
    fn batch_runs_in_parallel_and_aggregates() {
        let report = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n: 128, d: 6 })
            .placement(PlacementSpec::RandomBudget { delta: 0.6 })
            .adversary(AdversarySpec::HonestBehaving)
            .seeds(SeedPolicy::Sequence { base: 1, count: 8 })
            .build()
            .unwrap()
            .run_batch()
            .unwrap();
        assert_eq!(report.runs.len(), 8);
        let agg = report.aggregate_for(128).unwrap();
        assert_eq!(agg.runs, 8);
        assert!(agg.good_fraction.unwrap().mean > 0.8);
        // Reports are canonical: the batch JSON round-trips losslessly.
        let json = report.to_json();
        let back = BatchReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);
    }
}
