//! # byzcount-analysis
//!
//! The experiment harness of the reproduction: statistics ([`stats`]),
//! paper-style result tables ([`table`]) and one function per experiment of
//! DESIGN.md §3 ([`experiments`]).
//!
//! ```no_run
//! use byzcount_analysis::experiments::{exp_theorem1, ExperimentConfig};
//!
//! let table = exp_theorem1(&ExperimentConfig::quick());
//! println!("{}", table.to_markdown());
//! ```

pub mod campaign;
pub mod experiments;
pub mod stats;
pub mod table;

pub use campaign::{execute, execute_batch, FullRegistry, RunSimulation};
pub use experiments::{run_all, ExperimentConfig};
pub use stats::{percentile, summarize, Summary};
pub use table::{fmt_f, Table};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::campaign::{execute, execute_batch, FullRegistry, RunSimulation};
    pub use crate::experiments::{
        exp_approx_factor, exp_baselines, exp_core, exp_discovery, exp_expander, exp_fakechain,
        exp_phases, exp_placement, exp_rounds, exp_scale, exp_structure, exp_theorem1, run_all,
        ExperimentConfig,
    };
    pub use crate::stats::{percentile, summarize, Summary};
    pub use crate::table::{fmt_f, Table};
}
