//! The experiment suite: one function per experiment of DESIGN.md §3.
//!
//! The paper is a theory paper, so its "tables" are the quantitative claims
//! of Theorem 1 and the supporting lemmas.  Each function here regenerates
//! one of them as a [`Table`] over concrete network sizes; `EXPERIMENTS.md`
//! records representative output.
//!
//! All experiments are deterministic given the [`ExperimentConfig`] seed and
//! are parallelised over trials with rayon.

use crate::stats::summarize;
use crate::table::{fmt_f, Table};
use byzcount_adversary::{
    AdversaryKnowledge, ColorInflationAdversary, CombinedAdversary, FakeChainAdversary,
    HonestBehavingAdversary, InjectionTiming, Placement, SilentAdversary, SuppressionAdversary,
};
use byzcount_baselines::{
    geometric, run_geometric_support, run_spanning_tree_count, BaselineAttack,
};
use byzcount_core::{
    run_basic_counting_with, run_counting_with, CountingOutcome, ProtocolParams,
};
use netsim_graph::expansion::spectral_gap;
use netsim_graph::metrics::average_clustering;
use netsim_graph::prelude::*;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration shared by the experiments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Network sizes to sweep.
    pub n_values: Vec<usize>,
    /// Degree of the base expander `H`.
    pub d: usize,
    /// Fault exponent `δ` (Byzantine budget `n^{1−δ}`).
    pub delta: f64,
    /// Error parameter `ε`.
    pub epsilon: f64,
    /// Independent trials (seeds) per configuration.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration small enough for CI and unit tests (seconds).
    pub fn quick() -> Self {
        ExperimentConfig {
            n_values: vec![256, 512, 1024],
            d: 6,
            delta: 0.6,
            epsilon: 0.1,
            trials: 2,
            seed: 0xC0FFEE,
        }
    }

    /// The configuration used for the numbers recorded in EXPERIMENTS.md
    /// (minutes on a laptop).
    pub fn standard() -> Self {
        ExperimentConfig {
            n_values: vec![512, 1024, 2048, 4096, 8192],
            d: 6,
            delta: 0.6,
            epsilon: 0.1,
            trials: 5,
            seed: 0xC0FFEE,
        }
    }

    fn trial_seed(&self, n: usize, trial: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((n as u64) << 20)
            .wrapping_add(trial as u64)
    }

    fn network(&self, n: usize, trial: usize) -> SmallWorldNetwork {
        SmallWorldNetwork::generate_seeded(n, self.d, self.trial_seed(n, trial))
            .expect("network generation")
    }

    fn params(&self, net: &SmallWorldNetwork) -> ProtocolParams {
        ProtocolParams::for_network_default_expansion(net, self.delta, self.epsilon)
    }
}

/// One Byzantine-counting run under a named adversary; used by several
/// experiments.
fn run_with_adversary(
    cfg: &ExperimentConfig,
    n: usize,
    trial: usize,
    adversary_name: &str,
    verify: bool,
) -> CountingOutcome {
    let net = cfg.network(n, trial);
    let params = cfg.params(&net);
    let placement = Placement::random_budget(n, cfg.delta, cfg.trial_seed(n, trial) ^ 0xB12);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
    let seed = cfg.trial_seed(n, trial) ^ 0x5EED;
    let mask = placement.mask();
    let run = |adv: &str| -> CountingOutcome {
        match adv {
            "honest" => {
                if verify {
                    run_counting_with(&net, &params, mask, HonestBehavingAdversary, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, HonestBehavingAdversary, seed)
                }
            }
            "inflate-legal" => {
                let a = ColorInflationAdversary::new(knowledge.clone(), InjectionTiming::Legal);
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "inflate-last" => {
                let a = ColorInflationAdversary::new(knowledge.clone(), InjectionTiming::LastStep);
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "suppress" => {
                let a = SuppressionAdversary::new(knowledge.clone());
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "fake-chain" => {
                let a = FakeChainAdversary::new(knowledge.clone());
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "silent" => {
                if verify {
                    run_counting_with(&net, &params, mask, SilentAdversary, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, SilentAdversary, seed)
                }
            }
            "combined" => {
                let a = CombinedAdversary::new(knowledge.clone());
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            other => panic!("unknown adversary {other}"),
        }
    };
    run(adversary_name)
}

/// E1 — Theorem 1: fraction of honest nodes with a constant-factor estimate
/// of `log n` under the full Byzantine budget and the combined attack.
pub fn exp_theorem1(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E1",
        "Theorem 1: honest nodes with a estimate of log n within 3x of the reference phase (combined attack, B(n)=n^{1-δ})",
        &["n", "byz", "good frac", "crashed frac", "mean est", "ref phase", "def1 ok"],
    );
    for &n in &cfg.n_values {
        let results: Vec<(f64, f64, f64, f64, bool)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let outcome = run_with_adversary(cfg, n, t, "combined", true);
                let eval = outcome.evaluate_with_factor(3.0);
                (
                    eval.good_fraction_of_honest,
                    eval.honest_crashed as f64 / eval.honest_total.max(1) as f64,
                    eval.mean_estimate,
                    eval.reference_phase,
                    outcome.satisfies_definition1(3.0),
                )
            })
            .collect();
        let good = summarize(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let crashed = summarize(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let mean_est = summarize(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        let def1_ok = results.iter().filter(|r| r.4).count();
        let byz = (n as f64).powf(1.0 - cfg.delta).floor() as usize;
        table.push_row(vec![
            n.to_string(),
            byz.to_string(),
            fmt_f(good.mean),
            fmt_f(crashed.mean),
            fmt_f(mean_est.mean),
            fmt_f(results[0].3),
            format!("{def1_ok}/{}", cfg.trials),
        ]);
    }
    table
}

/// E2 — round complexity `O(log³ n)` and small messages.
pub fn exp_rounds(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E2",
        "Round complexity and message sizes (honest-behaving Byzantine nodes)",
        &["n", "rounds", "rounds/log^3 n", "msgs/node/round", "max msg IDs", "max msg bits"],
    );
    for &n in &cfg.n_values {
        let rows: Vec<(u64, f64, u32, u32)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let outcome = run_with_adversary(cfg, n, t, "honest", true);
                (
                    outcome.metrics.rounds,
                    outcome.metrics.avg_messages_per_node_round(n),
                    outcome.metrics.max_message.ids,
                    outcome.metrics.max_message.bits,
                )
            })
            .collect();
        let rounds = summarize(&rows.iter().map(|r| r.0 as f64).collect::<Vec<_>>());
        let mpr = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let log_n = netsim_graph::log2n(n).max(1.0);
        table.push_row(vec![
            n.to_string(),
            fmt_f(rounds.mean),
            fmt_f(rounds.mean / log_n.powi(3)),
            fmt_f(mpr.mean),
            rows.iter().map(|r| r.2).max().unwrap_or(0).to_string(),
            rows.iter().map(|r| r.3).max().unwrap_or(0).to_string(),
        ]);
    }
    table
}

/// E3 — the approximation factor: analytic `b/a` versus the empirical spread
/// of honest estimates, as a function of the degree `d`.
pub fn exp_approx_factor(cfg: &ExperimentConfig, d_values: &[usize], n: usize) -> Table {
    let mut table = Table::new(
        "E3",
        "Approximation factor: analytic b/a vs empirical estimate spread",
        &["d", "k", "a", "b", "b/a (analytic)", "empirical spread", "mean est / log2 n"],
    );
    for &d in d_values {
        let results: Vec<(f64, f64)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let seed = cfg.trial_seed(n + d, t);
                let net = SmallWorldNetwork::generate_seeded(n, d, seed).expect("net");
                let params = ProtocolParams::for_network(&net, cfg.delta, cfg.epsilon);
                let placement = Placement::random_budget(n, cfg.delta, seed ^ 1);
                let outcome = run_counting_with(
                    &net,
                    &params,
                    placement.mask(),
                    HonestBehavingAdversary,
                    seed ^ 2,
                );
                let eval = outcome.evaluate_with_factor(3.0);
                (eval.estimate_spread, eval.mean_estimate / netsim_graph::log2n(n).max(1.0))
            })
            .collect();
        let dummy_net = SmallWorldNetwork::generate_seeded(256, d, 7).expect("net");
        let params = ProtocolParams::for_network(&dummy_net, cfg.delta, cfg.epsilon);
        let spread = summarize(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let ratio = summarize(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        table.push_row(vec![
            d.to_string(),
            params.k.to_string(),
            fmt_f(params.a()),
            fmt_f(params.b()),
            fmt_f(params.approximation_factor()),
            fmt_f(spread.mean),
            fmt_f(ratio.mean),
        ]);
    }
    table
}

/// E4 — the naive baselines: accurate without Byzantine nodes, broken by a
/// single one.
pub fn exp_baselines(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E4",
        "Baselines under Byzantine faults (geometric support estimation & spanning-tree count)",
        &["estimator", "attack", "#byz", "mean estimate", "truth", "relative error"],
    );
    let ttl = (3.0 * netsim_graph::log2n(n)).ceil() as u64 + 5;
    let cases: Vec<(BaselineAttack, usize)> = vec![
        (BaselineAttack::None, 0),
        (BaselineAttack::Inflate, 1),
        (BaselineAttack::Suppress, (n as f64).powf(1.0 - cfg.delta) as usize),
    ];
    for (attack, byz_count) in cases {
        let net = cfg.network(n, 0);
        let placement = Placement::random(n, byz_count, cfg.seed ^ 0x4444);
        // Geometric support estimation: estimate of log2(n).
        let geo = run_geometric_support(net.h().csr(), placement.mask(), attack, ttl, cfg.seed);
        let geo_vals: Vec<f64> = geometric::honest_estimates(&geo, placement.mask())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let geo_mean = summarize(&geo_vals).mean;
        let truth_log = netsim_graph::log2n(n);
        table.push_row(vec![
            "geometric (log2 n)".into(),
            attack.label().into(),
            byz_count.to_string(),
            fmt_f(geo_mean),
            fmt_f(truth_log),
            fmt_f((geo_mean - truth_log).abs() / truth_log),
        ]);
        // Spanning-tree exact count: estimate of n.
        let st = run_spanning_tree_count(
            net.h().csr(),
            placement.mask(),
            attack,
            4 * ttl,
            cfg.seed ^ 0x77,
        );
        let st_vals: Vec<f64> = st
            .outputs
            .iter()
            .enumerate()
            .filter(|(i, o)| !placement.mask()[*i] && o.is_some())
            .map(|(_, o)| o.unwrap() as f64)
            .collect();
        let st_mean = if st_vals.is_empty() { f64::NAN } else { summarize(&st_vals).mean };
        table.push_row(vec![
            "spanning-tree (n)".into(),
            attack.label().into(),
            byz_count.to_string(),
            if st_vals.is_empty() { "stalled".into() } else { fmt_f(st_mean) },
            n.to_string(),
            if st_vals.is_empty() { "-".into() } else { fmt_f((st_mean - n as f64).abs() / n as f64) },
        ]);
    }
    table
}

/// E5 — Lemma 1 / Lemma 2: locally-tree-like fraction and the sizes of the
/// Definition 9 node categories.
pub fn exp_structure(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E5",
        "Locally-tree-like fraction and node-category sizes (Lemmas 1 and 2)",
        &["n", "LTL frac", "paper bound 1-O(n^-0.2)", "safe frac", "byz-safe frac"],
    );
    for &n in &cfg.n_values {
        let rows: Vec<(f64, f64, f64)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let net = cfg.network(n, t);
                let placement =
                    Placement::random_budget(n, cfg.delta, cfg.trial_seed(n, t) ^ 0x99);
                let cats = NodeCategories::compute(&net, placement.mask(), cfg.delta);
                let counts = cats.counts();
                (
                    counts.locally_tree_like as f64 / n as f64,
                    counts.safe as f64 / n as f64,
                    counts.byzantine_safe as f64 / n as f64,
                )
            })
            .collect();
        let ltl = summarize(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let safe = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let bsafe = summarize(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        table.push_row(vec![
            n.to_string(),
            fmt_f(ltl.mean),
            fmt_f(1.0 - (n as f64).powf(-0.2)),
            fmt_f(safe.mean),
            fmt_f(bsafe.mean),
        ]);
    }
    table
}

/// E6 — expansion and clustering of `H`, `G` and Watts–Strogatz (Lemma 19
/// and the small-world property of Section 2.1).
pub fn exp_expander(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E6",
        "Spectral gap and clustering: H(n,d) vs G = H∪L vs Watts–Strogatz",
        &["n", "gap(H)", "gap(G)", "cc(H)", "cc(G)", "cc(WS β=0.1)"],
    );
    for &n in &cfg.n_values {
        let net = cfg.network(n, 0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed ^ n as u64);
        use rand::SeedableRng;
        let _ = &mut rng;
        let ws = netsim_graph::WattsStrogatz::generate(
            n,
            cfg.d / 2,
            0.1,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed ^ n as u64),
        )
        .expect("ws");
        let gap_h = spectral_gap(net.h().csr(), 200, cfg.seed).gap;
        let gap_g = spectral_gap(net.g(), 200, cfg.seed).gap;
        table.push_row(vec![
            n.to_string(),
            fmt_f(gap_h),
            fmt_f(gap_g),
            fmt_f(average_clustering(net.h().csr())),
            fmt_f(average_clustering(net.g())),
            fmt_f(average_clustering(ws.csr())),
        ]);
    }
    table
}

/// E7 — Lemma 3: accuracy of the H-neighbourhood reconstruction from honest
/// adjacency reports.
pub fn exp_discovery(cfg: &ExperimentConfig) -> Table {
    use byzcount_core::discovery::{reconstruct, ReconstructionAccuracy};
    use std::collections::HashMap;
    let mut table = Table::new(
        "E7",
        "Lemma 3: H-neighbourhood reconstruction accuracy from G-adjacency reports",
        &["n", "exact frac", "missed H-edge frac", "spurious H-edge frac"],
    );
    for &n in &cfg.n_values {
        let net = cfg.network(n, 0);
        let sample = n.min(400);
        let accs: Vec<ReconstructionAccuracy> = (0..sample)
            .into_par_iter()
            .map(|i| {
                let v = NodeId::from_index(i);
                let reports: HashMap<u32, Vec<u32>> = net
                    .g_neighbors(v)
                    .iter()
                    .map(|&u| (u, net.g_neighbors(NodeId(u)).to_vec()))
                    .collect();
                let out = reconstruct(v.0, net.g_neighbors(v), &reports);
                let mut truth: Vec<u32> = net.h_neighbors(v).to_vec();
                truth.dedup();
                ReconstructionAccuracy::compare(&out.h_neighbors, &truth)
            })
            .collect();
        let exact = accs.iter().filter(|a| a.is_exact()).count() as f64 / sample as f64;
        let total_h: usize = accs.iter().map(|a| a.true_positives + a.false_negatives).sum();
        let missed: usize = accs.iter().map(|a| a.false_negatives).sum();
        let spurious: usize = accs.iter().map(|a| a.false_positives).sum();
        table.push_row(vec![
            n.to_string(),
            fmt_f(exact),
            fmt_f(missed as f64 / total_h.max(1) as f64),
            fmt_f(spurious as f64 / total_h.max(1) as f64),
        ]);
    }
    table
}

/// E8 — Lemma 15/16 and Figure 1: the fake-chain and last-step injection
/// attacks against Algorithm 1 vs Algorithm 2.
pub fn exp_fakechain(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E8",
        "Attack resistance: Algorithm 1 (no verification) vs Algorithm 2 (verification)",
        &["adversary", "algorithm", "good frac", "crashed frac", "completed"],
    );
    for adversary in ["inflate-last", "fake-chain", "suppress", "silent"] {
        for (algo, verify) in [("Algo 1", false), ("Algo 2", true)] {
            let rows: Vec<(f64, f64, bool)> = (0..cfg.trials)
                .into_par_iter()
                .map(|t| {
                    let outcome = run_with_adversary(cfg, n, t, adversary, verify);
                    let eval = outcome.evaluate_with_factor(3.0);
                    (
                        eval.good_fraction_of_honest,
                        eval.honest_crashed as f64 / eval.honest_total.max(1) as f64,
                        outcome.completed,
                    )
                })
                .collect();
            let good = summarize(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
            let crashed = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
            let completed = rows.iter().filter(|r| r.2).count();
            table.push_row(vec![
                adversary.into(),
                algo.into(),
                fmt_f(good.mean),
                fmt_f(crashed.mean),
                format!("{completed}/{}", cfg.trials),
            ]);
        }
    }
    table
}

/// E9 — Lemma 14: the uncrashed core retains `n − o(n)` nodes and positive
/// expansion under topology-lying adversaries.
pub fn exp_core(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E9",
        "Lemma 14: size and expansion of the uncrashed honest core",
        &["adversary", "core frac", "crashed frac", "core spectral gap"],
    );
    for adversary in ["fake-chain", "silent", "combined"] {
        let rows: Vec<(f64, f64, f64)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let net = cfg.network(n, t);
                let params = cfg.params(&net);
                let placement =
                    Placement::random_budget(n, cfg.delta, cfg.trial_seed(n, t) ^ 0xB12);
                let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
                let seed = cfg.trial_seed(n, t) ^ 0x5EED;
                let outcome = match adversary {
                    "fake-chain" => run_counting_with(
                        &net,
                        &params,
                        placement.mask(),
                        FakeChainAdversary::new(knowledge),
                        seed,
                    ),
                    "silent" => run_counting_with(
                        &net,
                        &params,
                        placement.mask(),
                        SilentAdversary,
                        seed,
                    ),
                    _ => run_counting_with(
                        &net,
                        &params,
                        placement.mask(),
                        CombinedAdversary::new(knowledge),
                        seed,
                    ),
                };
                let keep: Vec<bool> = (0..n)
                    .map(|i| !outcome.crashed[i] && !placement.mask()[i])
                    .collect();
                let core = netsim_graph::bfs::largest_component_induced(net.h().csr(), &keep);
                let crashed = outcome.crashed_honest() as f64 / n as f64;
                // Spectral gap of the core's induced subgraph.
                let core_set: std::collections::HashSet<u32> =
                    core.iter().map(|v| v.0).collect();
                let remap: std::collections::HashMap<u32, u32> = core
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.0, i as u32))
                    .collect();
                let mut edges = Vec::new();
                for &v in &core {
                    for &u in net.h_neighbors(v) {
                        if u > v.0 && core_set.contains(&u) {
                            edges.push((remap[&v.0], remap[&u]));
                        }
                    }
                }
                let gap = if core.len() > 2 {
                    let sub = Csr::from_undirected_edges(core.len(), &edges).expect("core csr");
                    spectral_gap(&sub, 150, seed).gap
                } else {
                    0.0
                };
                (core.len() as f64 / n as f64, crashed, gap)
            })
            .collect();
        let core = summarize(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let crashed = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let gap = summarize(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        table.push_row(vec![
            adversary.into(),
            fmt_f(core.mean),
            fmt_f(crashed.mean),
            fmt_f(gap.mean),
        ]);
    }
    table
}

/// E10 — the two-stage analysis (Lemmas 11 and 13): the distribution of
/// decided phases relative to `a·log n` and `b·log n`.
pub fn exp_phases(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E10",
        "Decision-phase distribution relative to the reference phase",
        &["phase", "honest nodes deciding", "fraction", "reference phase"],
    );
    let outcome = run_with_adversary(cfg, n, 0, "inflate-legal", true);
    let reference = outcome.params.expected_decision_phase(n);
    let mut histogram: std::collections::BTreeMap<u64, usize> = Default::default();
    let mut honest_total = 0usize;
    for i in 0..n {
        if outcome.byzantine[i] {
            continue;
        }
        honest_total += 1;
        if let Some(p) = outcome.estimates[i] {
            *histogram.entry(p).or_insert(0) += 1;
        }
    }
    for (phase, count) in histogram {
        table.push_row(vec![
            phase.to_string(),
            count.to_string(),
            fmt_f(count as f64 / honest_total.max(1) as f64),
            fmt_f(reference),
        ]);
    }
    table
}

/// E11 — random vs adversarially clustered Byzantine placement (the paper's
/// open-problem ablation).
pub fn exp_placement(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E11",
        "Byzantine placement ablation: random (paper's model) vs clustered",
        &["placement", "good frac", "crashed frac"],
    );
    for mode in ["random", "clustered"] {
        let rows: Vec<(f64, f64)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let net = cfg.network(n, t);
                let params = cfg.params(&net);
                let budget = (n as f64).powf(1.0 - cfg.delta).floor() as usize;
                let placement = if mode == "random" {
                    Placement::random(n, budget, cfg.trial_seed(n, t) ^ 0x1)
                } else {
                    Placement::clustered(&net, budget, cfg.trial_seed(n, t) ^ 0x1)
                };
                let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
                let outcome = run_counting_with(
                    &net,
                    &params,
                    placement.mask(),
                    CombinedAdversary::new(knowledge),
                    cfg.trial_seed(n, t) ^ 0x2,
                );
                let eval = outcome.evaluate_with_factor(3.0);
                (
                    eval.good_fraction_of_honest,
                    eval.honest_crashed as f64 / eval.honest_total.max(1) as f64,
                )
            })
            .collect();
        let good = summarize(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let crashed = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        table.push_row(vec![mode.into(), fmt_f(good.mean), fmt_f(crashed.mean)]);
    }
    table
}

/// Every experiment with its default workload, in DESIGN.md order.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<Table> {
    let n_mid = cfg.n_values.last().copied().unwrap_or(1024);
    vec![
        exp_theorem1(cfg),
        exp_rounds(cfg),
        exp_approx_factor(cfg, &[6, 8, 10], cfg.n_values.first().copied().unwrap_or(512)),
        exp_baselines(cfg, n_mid),
        exp_structure(cfg),
        exp_expander(cfg),
        exp_discovery(cfg),
        exp_fakechain(cfg, n_mid.min(2048)),
        exp_core(cfg, n_mid.min(2048)),
        exp_phases(cfg, n_mid.min(2048)),
        exp_placement(cfg, n_mid.min(2048)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            n_values: vec![256],
            d: 6,
            delta: 0.6,
            epsilon: 0.1,
            trials: 1,
            seed: 7,
        }
    }

    #[test]
    fn theorem1_quick_run_produces_high_accuracy() {
        let table = exp_theorem1(&tiny());
        assert_eq!(table.rows.len(), 1);
        let good: f64 = table.rows[0][2].parse().unwrap();
        assert!(good > 0.5, "good fraction {good} too low even for a tiny run");
    }

    #[test]
    fn rounds_table_has_expected_columns() {
        let table = exp_rounds(&tiny());
        assert_eq!(table.headers.len(), 6);
        let rounds: f64 = table.rows[0][1].parse().unwrap();
        assert!(rounds > 10.0);
        // Small messages: a constant number of IDs.
        let max_ids: u32 = table.rows[0][4].parse().unwrap();
        assert!(max_ids <= 64, "messages must stay small, got {max_ids} IDs");
    }

    #[test]
    fn baselines_table_shows_inflation_damage() {
        let cfg = tiny();
        let table = exp_baselines(&cfg, 256);
        // Row 0: geometric honest; row 2: geometric under inflation.
        let honest_err: f64 = table.rows[0][5].parse().unwrap();
        let inflated_err: f64 = table.rows[2][5].parse().unwrap();
        assert!(honest_err < 1.0);
        assert!(inflated_err > honest_err, "inflation must worsen the estimate");
    }

    #[test]
    fn structure_and_discovery_tables_are_sane() {
        let cfg = tiny();
        let s = exp_structure(&cfg);
        let ltl: f64 = s.rows[0][1].parse().unwrap();
        assert!(ltl > 0.8);
        let d = exp_discovery(&cfg);
        let exact: f64 = d.rows[0][1].parse().unwrap();
        assert!(exact > 0.5);
    }
}
