//! The experiment suite: one function per experiment of DESIGN.md §3.
//!
//! The paper is a theory paper, so its "tables" are the quantitative claims
//! of Theorem 1 and the supporting lemmas.  Each function here regenerates
//! one of them as a [`Table`] over concrete network sizes; `EXPERIMENTS.md`
//! records representative output.
//!
//! All experiments are deterministic given the [`ExperimentConfig`] seed and
//! are parallelised over trials with rayon.

use crate::campaign::RunSimulation;
use crate::stats::summarize;
use crate::table::{fmt_f, Table};
use byzcount_adversary::{
    AdversaryKnowledge, ColorInflationAdversary, CombinedAdversary, FakeChainAdversary,
    HonestBehavingAdversary, InjectionTiming, Placement, SilentAdversary, SuppressionAdversary,
};
use byzcount_core::sim::{
    AdversarySpec, AttackSpec, BatchReport, FaultSpec, PlacementSpec, RunReport, SeedPolicy,
    Simulation, TimingSpec, TopologySpec, WorkloadSpec,
};
use byzcount_core::{run_basic_counting_with, run_counting_with, CountingOutcome, ProtocolParams};
use netsim_graph::expansion::spectral_gap;
use netsim_graph::metrics::average_clustering;
use netsim_graph::prelude::*;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration shared by the experiments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Network sizes to sweep.
    pub n_values: Vec<usize>,
    /// Degree of the base expander `H`.
    pub d: usize,
    /// Fault exponent `δ` (Byzantine budget `n^{1−δ}`).
    pub delta: f64,
    /// Error parameter `ε`.
    pub epsilon: f64,
    /// Independent trials (seeds) per configuration.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration small enough for CI and unit tests (seconds).
    pub fn quick() -> Self {
        ExperimentConfig {
            n_values: vec![256, 512, 1024],
            d: 6,
            delta: 0.6,
            epsilon: 0.1,
            trials: 2,
            seed: 0xC0FFEE,
        }
    }

    /// The configuration used for the numbers recorded in EXPERIMENTS.md
    /// (minutes on a laptop).
    pub fn standard() -> Self {
        ExperimentConfig {
            n_values: vec![512, 1024, 2048, 4096, 8192],
            d: 6,
            delta: 0.6,
            epsilon: 0.1,
            trials: 5,
            seed: 0xC0FFEE,
        }
    }

    fn trial_seed(&self, n: usize, trial: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((n as u64) << 20)
            .wrapping_add(trial as u64)
    }

    fn network(&self, n: usize, trial: usize) -> SmallWorldNetwork {
        SmallWorldNetwork::generate_seeded(n, self.d, self.trial_seed(n, trial))
            .expect("network generation")
    }

    fn params(&self, net: &SmallWorldNetwork) -> ProtocolParams {
        ProtocolParams::for_network_default_expansion(net, self.delta, self.epsilon)
    }

    /// The counting-workload batch this configuration describes: the paper's
    /// Byzantine budget, `trials` seeds per size, all sizes in one campaign.
    pub fn counting_batch(
        &self,
        workload: WorkloadSpec,
        adversary: AdversarySpec,
        sizes: &[usize],
    ) -> BatchReport {
        Simulation::builder()
            .topology(TopologySpec::SmallWorld {
                n: sizes.first().copied().unwrap_or(256),
                d: self.d,
            })
            .workload(workload)
            .placement(PlacementSpec::RandomBudget { delta: self.delta })
            .adversary(adversary)
            .derived_params(self.delta, self.epsilon)
            .seeds(SeedPolicy::Sequence {
                base: self.seed,
                count: self.trials.max(1) as u32,
            })
            .sizes(sizes)
            .build()
            .expect("experiment batch spec")
            .run_batch()
            .expect("experiment batch execution")
    }
}

/// The factor-3 counting evaluations of one size bucket of a batch.
fn counting_rows(batch: &BatchReport, n: usize) -> Vec<&RunReport> {
    batch.runs.iter().filter(|r| r.n == n).collect()
}

/// One Byzantine-counting run under a named adversary; used by several
/// experiments.
fn run_with_adversary(
    cfg: &ExperimentConfig,
    n: usize,
    trial: usize,
    adversary_name: &str,
    verify: bool,
) -> CountingOutcome {
    let net = cfg.network(n, trial);
    let params = cfg.params(&net);
    let placement = Placement::random_budget(n, cfg.delta, cfg.trial_seed(n, trial) ^ 0xB12);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
    let seed = cfg.trial_seed(n, trial) ^ 0x5EED;
    let mask = placement.mask();
    let run = |adv: &str| -> CountingOutcome {
        match adv {
            "honest" => {
                if verify {
                    run_counting_with(&net, &params, mask, HonestBehavingAdversary, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, HonestBehavingAdversary, seed)
                }
            }
            "inflate-legal" => {
                let a = ColorInflationAdversary::new(knowledge.clone(), InjectionTiming::Legal);
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "inflate-last" => {
                let a = ColorInflationAdversary::new(knowledge.clone(), InjectionTiming::LastStep);
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "suppress" => {
                let a = SuppressionAdversary::new(knowledge.clone());
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "fake-chain" => {
                let a = FakeChainAdversary::new(knowledge.clone());
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            "silent" => {
                if verify {
                    run_counting_with(&net, &params, mask, SilentAdversary, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, SilentAdversary, seed)
                }
            }
            "combined" => {
                let a = CombinedAdversary::new(knowledge.clone());
                if verify {
                    run_counting_with(&net, &params, mask, a, seed)
                } else {
                    run_basic_counting_with(&net, &params, mask, a, seed)
                }
            }
            other => panic!("unknown adversary {other}"),
        }
    };
    run(adversary_name)
}

/// E1 — Theorem 1: fraction of honest nodes with a constant-factor estimate
/// of `log n` under the full Byzantine budget and the combined attack.
///
/// One multi-seed, multi-size [`BatchReport`] drives the whole table.
pub fn exp_theorem1(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E1",
        "Theorem 1: honest nodes with a estimate of log n within 3x of the reference phase (combined attack, B(n)=n^{1-δ})",
        &["n", "byz", "good frac", "crashed frac", "mean est", "ref phase", "def1 ok"],
    );
    let batch = cfg.counting_batch(
        WorkloadSpec::Byzantine,
        AdversarySpec::Combined,
        &cfg.n_values,
    );
    for &n in &cfg.n_values {
        let runs = counting_rows(&batch, n);
        let evals: Vec<_> = runs.iter().filter_map(|r| r.counting.as_ref()).collect();
        let good = summarize(
            &evals
                .iter()
                .map(|c| c.eval_factor3.good_fraction_of_honest)
                .collect::<Vec<_>>(),
        );
        let crashed = summarize(
            &evals
                .iter()
                .map(|c| {
                    c.eval_factor3.honest_crashed as f64 / c.eval_factor3.honest_total.max(1) as f64
                })
                .collect::<Vec<_>>(),
        );
        let mean_est = summarize(
            &evals
                .iter()
                .map(|c| c.eval_factor3.mean_estimate)
                .collect::<Vec<_>>(),
        );
        let def1_ok = evals.iter().filter(|c| c.definition1_factor3).count();
        let reference = evals
            .first()
            .map(|c| c.eval_factor3.reference_phase)
            .unwrap_or(0.0);
        let byz = (n as f64).powf(1.0 - cfg.delta).floor() as usize;
        table.push_row(vec![
            n.to_string(),
            byz.to_string(),
            fmt_f(good.mean),
            fmt_f(crashed.mean),
            fmt_f(mean_est.mean),
            fmt_f(reference),
            format!("{def1_ok}/{}", evals.len()),
        ]);
    }
    table
}

/// E2 — round complexity `O(log³ n)` and small messages.
pub fn exp_rounds(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E2",
        "Round complexity and message sizes (honest-behaving Byzantine nodes)",
        &[
            "n",
            "rounds",
            "rounds/log^3 n",
            "msgs/node/round",
            "max msg IDs",
            "max msg bits",
        ],
    );
    let batch = cfg.counting_batch(
        WorkloadSpec::Byzantine,
        AdversarySpec::HonestBehaving,
        &cfg.n_values,
    );
    for &n in &cfg.n_values {
        let runs = counting_rows(&batch, n);
        let rounds = summarize(&runs.iter().map(|r| r.rounds as f64).collect::<Vec<_>>());
        let mpr = summarize(
            &runs
                .iter()
                .map(|r| r.messages_delivered as f64 / (r.rounds.max(1) as f64 * n.max(1) as f64))
                .collect::<Vec<_>>(),
        );
        let log_n = netsim_graph::log2n(n).max(1.0);
        table.push_row(vec![
            n.to_string(),
            fmt_f(rounds.mean),
            fmt_f(rounds.mean / log_n.powi(3)),
            fmt_f(mpr.mean),
            runs.iter()
                .map(|r| r.max_message_ids)
                .max()
                .unwrap_or(0)
                .to_string(),
            runs.iter()
                .map(|r| r.max_message_bits)
                .max()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    table
}

/// E3 — the approximation factor: analytic `b/a` versus the empirical spread
/// of honest estimates, as a function of the degree `d`.
pub fn exp_approx_factor(cfg: &ExperimentConfig, d_values: &[usize], n: usize) -> Table {
    let mut table = Table::new(
        "E3",
        "Approximation factor: analytic b/a vs empirical estimate spread",
        &[
            "d",
            "k",
            "a",
            "b",
            "b/a (analytic)",
            "empirical spread",
            "mean est / log2 n",
        ],
    );
    for &d in d_values {
        let results: Vec<(f64, f64)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let seed = cfg.trial_seed(n + d, t);
                let net = SmallWorldNetwork::generate_seeded(n, d, seed).expect("net");
                let params = ProtocolParams::for_network(&net, cfg.delta, cfg.epsilon);
                let placement = Placement::random_budget(n, cfg.delta, seed ^ 1);
                let outcome = run_counting_with(
                    &net,
                    &params,
                    placement.mask(),
                    HonestBehavingAdversary,
                    seed ^ 2,
                );
                let eval = outcome.evaluate_with_factor(3.0);
                (
                    eval.estimate_spread,
                    eval.mean_estimate / netsim_graph::log2n(n).max(1.0),
                )
            })
            .collect();
        let dummy_net = SmallWorldNetwork::generate_seeded(256, d, 7).expect("net");
        let params = ProtocolParams::for_network(&dummy_net, cfg.delta, cfg.epsilon);
        let spread = summarize(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let ratio = summarize(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        table.push_row(vec![
            d.to_string(),
            params.k.to_string(),
            fmt_f(params.a()),
            fmt_f(params.b()),
            fmt_f(params.approximation_factor()),
            fmt_f(spread.mean),
            fmt_f(ratio.mean),
        ]);
    }
    table
}

/// E4 — the naive baselines: accurate without Byzantine nodes, broken by a
/// single one.  Every case is one [`Simulation`] run over the expander `H`.
pub fn exp_baselines(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E4",
        "Baselines under Byzantine faults (geometric support estimation & spanning-tree count)",
        &[
            "estimator",
            "attack",
            "#byz",
            "mean estimate",
            "truth",
            "relative error",
        ],
    );
    let cases: Vec<(AttackSpec, &str, usize)> = vec![
        (AttackSpec::None, "honest", 0),
        (AttackSpec::Inflate, "inflate", 1),
        (
            AttackSpec::Suppress,
            "suppress",
            (n as f64).powf(1.0 - cfg.delta) as usize,
        ),
    ];
    for (attack, label, byz_count) in cases {
        for (workload, name) in [
            (
                WorkloadSpec::GeometricSupport { ttl: None, attack },
                "geometric (log2 n)",
            ),
            (
                WorkloadSpec::SpanningTree {
                    max_rounds: None,
                    attack,
                },
                "spanning-tree (n)",
            ),
        ] {
            let report = Simulation::builder()
                .topology(TopologySpec::SmallWorldH { n, d: cfg.d })
                .workload(workload)
                .placement(PlacementSpec::Random { count: byz_count })
                .derived_params(cfg.delta, cfg.epsilon)
                .seed(cfg.seed ^ 0x4444)
                .build()
                .expect("baseline spec")
                .run()
                .expect("baseline run");
            let stalled = report.estimate.decided == 0;
            let truth = report.truth.unwrap_or(f64::NAN);
            table.push_row(vec![
                name.into(),
                label.into(),
                byz_count.to_string(),
                if stalled {
                    "stalled".into()
                } else {
                    fmt_f(report.estimate.mean)
                },
                fmt_f(truth),
                match report.relative_error() {
                    Some(err) => fmt_f(err),
                    None => "-".into(),
                },
            ]);
        }
    }
    table
}

/// E5 — Lemma 1 / Lemma 2: locally-tree-like fraction and the sizes of the
/// Definition 9 node categories.
pub fn exp_structure(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E5",
        "Locally-tree-like fraction and node-category sizes (Lemmas 1 and 2)",
        &[
            "n",
            "LTL frac",
            "paper bound 1-O(n^-0.2)",
            "safe frac",
            "byz-safe frac",
        ],
    );
    for &n in &cfg.n_values {
        let rows: Vec<(f64, f64, f64)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let net = cfg.network(n, t);
                let placement = Placement::random_budget(n, cfg.delta, cfg.trial_seed(n, t) ^ 0x99);
                let cats = NodeCategories::compute(&net, placement.mask(), cfg.delta);
                let counts = cats.counts();
                (
                    counts.locally_tree_like as f64 / n as f64,
                    counts.safe as f64 / n as f64,
                    counts.byzantine_safe as f64 / n as f64,
                )
            })
            .collect();
        let ltl = summarize(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let safe = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let bsafe = summarize(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        table.push_row(vec![
            n.to_string(),
            fmt_f(ltl.mean),
            fmt_f(1.0 - (n as f64).powf(-0.2)),
            fmt_f(safe.mean),
            fmt_f(bsafe.mean),
        ]);
    }
    table
}

/// E6 — expansion and clustering of `H`, `G` and Watts–Strogatz (Lemma 19
/// and the small-world property of Section 2.1).
pub fn exp_expander(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E6",
        "Spectral gap and clustering: H(n,d) vs G = H∪L vs Watts–Strogatz",
        &["n", "gap(H)", "gap(G)", "cc(H)", "cc(G)", "cc(WS β=0.1)"],
    );
    for &n in &cfg.n_values {
        let net = cfg.network(n, 0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed ^ n as u64);
        use rand::SeedableRng;
        let _ = &mut rng;
        let ws = netsim_graph::WattsStrogatz::generate(
            n,
            cfg.d / 2,
            0.1,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed ^ n as u64),
        )
        .expect("ws");
        let gap_h = spectral_gap(net.h().csr(), 200, cfg.seed).gap;
        let gap_g = spectral_gap(net.g(), 200, cfg.seed).gap;
        table.push_row(vec![
            n.to_string(),
            fmt_f(gap_h),
            fmt_f(gap_g),
            fmt_f(average_clustering(net.h().csr())),
            fmt_f(average_clustering(net.g())),
            fmt_f(average_clustering(ws.csr())),
        ]);
    }
    table
}

/// E7 — Lemma 3: accuracy of the H-neighbourhood reconstruction from honest
/// adjacency reports.
pub fn exp_discovery(cfg: &ExperimentConfig) -> Table {
    use byzcount_core::discovery::{reconstruct, ReconstructionAccuracy};
    use std::collections::HashMap;
    let mut table = Table::new(
        "E7",
        "Lemma 3: H-neighbourhood reconstruction accuracy from G-adjacency reports",
        &[
            "n",
            "exact frac",
            "missed H-edge frac",
            "spurious H-edge frac",
        ],
    );
    for &n in &cfg.n_values {
        let net = cfg.network(n, 0);
        let sample = n.min(400);
        let accs: Vec<ReconstructionAccuracy> = (0..sample)
            .into_par_iter()
            .map(|i| {
                let v = NodeId::from_index(i);
                let reports: HashMap<u32, Vec<u32>> = net
                    .g_neighbors(v)
                    .iter()
                    .map(|&u| (u, net.g_neighbors(NodeId(u)).to_vec()))
                    .collect();
                let out = reconstruct(v.0, net.g_neighbors(v), &reports);
                let mut truth: Vec<u32> = net.h_neighbors(v).to_vec();
                truth.dedup();
                ReconstructionAccuracy::compare(&out.h_neighbors, &truth)
            })
            .collect();
        let exact = accs.iter().filter(|a| a.is_exact()).count() as f64 / sample as f64;
        let total_h: usize = accs
            .iter()
            .map(|a| a.true_positives + a.false_negatives)
            .sum();
        let missed: usize = accs.iter().map(|a| a.false_negatives).sum();
        let spurious: usize = accs.iter().map(|a| a.false_positives).sum();
        table.push_row(vec![
            n.to_string(),
            fmt_f(exact),
            fmt_f(missed as f64 / total_h.max(1) as f64),
            fmt_f(spurious as f64 / total_h.max(1) as f64),
        ]);
    }
    table
}

/// E8 — Lemma 15/16 and Figure 1: the fake-chain and last-step injection
/// attacks against Algorithm 1 vs Algorithm 2.
pub fn exp_fakechain(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E8",
        "Attack resistance: Algorithm 1 (no verification) vs Algorithm 2 (verification)",
        &[
            "adversary",
            "algorithm",
            "good frac",
            "crashed frac",
            "completed",
        ],
    );
    let adversaries = [
        (
            "inflate-last",
            AdversarySpec::ColorInflation {
                timing: TimingSpec::LastStep,
            },
        ),
        ("fake-chain", AdversarySpec::FakeChain),
        ("suppress", AdversarySpec::Suppression),
        ("silent", AdversarySpec::Silent),
    ];
    for (label, adversary) in adversaries {
        for (algo, workload) in [
            ("Algo 1", WorkloadSpec::Basic),
            ("Algo 2", WorkloadSpec::Byzantine),
        ] {
            let batch = cfg.counting_batch(workload, adversary, &[n]);
            let runs = counting_rows(&batch, n);
            let evals: Vec<_> = runs.iter().filter_map(|r| r.counting.as_ref()).collect();
            let good = summarize(
                &evals
                    .iter()
                    .map(|c| c.eval_factor3.good_fraction_of_honest)
                    .collect::<Vec<_>>(),
            );
            let crashed = summarize(
                &evals
                    .iter()
                    .map(|c| {
                        c.eval_factor3.honest_crashed as f64
                            / c.eval_factor3.honest_total.max(1) as f64
                    })
                    .collect::<Vec<_>>(),
            );
            let completed = runs.iter().filter(|r| r.completed).count();
            table.push_row(vec![
                label.into(),
                algo.into(),
                fmt_f(good.mean),
                fmt_f(crashed.mean),
                format!("{completed}/{}", runs.len()),
            ]);
        }
    }
    table
}

/// E9 — Lemma 14: the uncrashed core retains `n − o(n)` nodes and positive
/// expansion under topology-lying adversaries.
pub fn exp_core(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E9",
        "Lemma 14: size and expansion of the uncrashed honest core",
        &[
            "adversary",
            "core frac",
            "crashed frac",
            "core spectral gap",
        ],
    );
    for adversary in ["fake-chain", "silent", "combined"] {
        let rows: Vec<(f64, f64, f64)> = (0..cfg.trials)
            .into_par_iter()
            .map(|t| {
                let net = cfg.network(n, t);
                let params = cfg.params(&net);
                let placement =
                    Placement::random_budget(n, cfg.delta, cfg.trial_seed(n, t) ^ 0xB12);
                let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
                let seed = cfg.trial_seed(n, t) ^ 0x5EED;
                let outcome = match adversary {
                    "fake-chain" => run_counting_with(
                        &net,
                        &params,
                        placement.mask(),
                        FakeChainAdversary::new(knowledge),
                        seed,
                    ),
                    "silent" => {
                        run_counting_with(&net, &params, placement.mask(), SilentAdversary, seed)
                    }
                    _ => run_counting_with(
                        &net,
                        &params,
                        placement.mask(),
                        CombinedAdversary::new(knowledge),
                        seed,
                    ),
                };
                let keep: Vec<bool> = (0..n)
                    .map(|i| !outcome.crashed[i] && !placement.mask()[i])
                    .collect();
                let core = netsim_graph::bfs::largest_component_induced(net.h().csr(), &keep);
                let crashed = outcome.crashed_honest() as f64 / n as f64;
                // Spectral gap of the core's induced subgraph.
                let core_set: std::collections::HashSet<u32> = core.iter().map(|v| v.0).collect();
                let remap: std::collections::HashMap<u32, u32> = core
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.0, i as u32))
                    .collect();
                let mut edges = Vec::new();
                for &v in &core {
                    for &u in net.h_neighbors(v) {
                        if u > v.0 && core_set.contains(&u) {
                            edges.push((remap[&v.0], remap[&u]));
                        }
                    }
                }
                let gap = if core.len() > 2 {
                    let sub = Csr::from_undirected_edges(core.len(), &edges).expect("core csr");
                    spectral_gap(&sub, 150, seed).gap
                } else {
                    0.0
                };
                (core.len() as f64 / n as f64, crashed, gap)
            })
            .collect();
        let core = summarize(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let crashed = summarize(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let gap = summarize(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        table.push_row(vec![
            adversary.into(),
            fmt_f(core.mean),
            fmt_f(crashed.mean),
            fmt_f(gap.mean),
        ]);
    }
    table
}

/// E10 — the two-stage analysis (Lemmas 11 and 13): the distribution of
/// decided phases relative to `a·log n` and `b·log n`.
pub fn exp_phases(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E10",
        "Decision-phase distribution relative to the reference phase",
        &[
            "phase",
            "honest nodes deciding",
            "fraction",
            "reference phase",
        ],
    );
    let outcome = run_with_adversary(cfg, n, 0, "inflate-legal", true);
    let reference = outcome.params.expected_decision_phase(n);
    let mut histogram: std::collections::BTreeMap<u64, usize> = Default::default();
    let mut honest_total = 0usize;
    for i in 0..n {
        if outcome.byzantine[i] {
            continue;
        }
        honest_total += 1;
        if let Some(p) = outcome.estimates[i] {
            *histogram.entry(p).or_insert(0) += 1;
        }
    }
    for (phase, count) in histogram {
        table.push_row(vec![
            phase.to_string(),
            count.to_string(),
            fmt_f(count as f64 / honest_total.max(1) as f64),
            fmt_f(reference),
        ]);
    }
    table
}

/// E11 — random vs adversarially clustered Byzantine placement (the paper's
/// open-problem ablation).
pub fn exp_placement(cfg: &ExperimentConfig, n: usize) -> Table {
    let mut table = Table::new(
        "E11",
        "Byzantine placement ablation: random (paper's model) vs clustered",
        &["placement", "good frac", "crashed frac"],
    );
    let budget = (n as f64).powf(1.0 - cfg.delta).floor() as usize;
    for (mode, placement) in [
        ("random", PlacementSpec::Random { count: budget }),
        ("clustered", PlacementSpec::Clustered { count: budget }),
    ] {
        let batch = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n, d: cfg.d })
            .placement(placement)
            .adversary(AdversarySpec::Combined)
            .derived_params(cfg.delta, cfg.epsilon)
            .seeds(SeedPolicy::Sequence {
                base: cfg.seed ^ 0x1,
                count: cfg.trials.max(1) as u32,
            })
            .build()
            .expect("placement spec")
            .run_batch()
            .expect("placement batch");
        let evals: Vec<_> = batch
            .runs
            .iter()
            .filter_map(|r| r.counting.as_ref())
            .collect();
        let good = summarize(
            &evals
                .iter()
                .map(|c| c.eval_factor3.good_fraction_of_honest)
                .collect::<Vec<_>>(),
        );
        let crashed = summarize(
            &evals
                .iter()
                .map(|c| {
                    c.eval_factor3.honest_crashed as f64 / c.eval_factor3.honest_total.max(1) as f64
                })
                .collect::<Vec<_>>(),
        );
        table.push_row(vec![mode.into(), fmt_f(good.mean), fmt_f(crashed.mean)]);
    }
    table
}

/// The fault sweep E12 applies to every workload, mildest first (rows are
/// labelled with [`FaultSpec::describe`]).
pub fn degradation_fault_levels() -> Vec<FaultSpec> {
    vec![
        FaultSpec::None,
        FaultSpec::Loss { rate: 0.10 },
        FaultSpec::Loss { rate: 0.30 },
        FaultSpec::Delay {
            max_delay: 3,
            rate: 0.5,
        },
        FaultSpec::Churn {
            rate: 0.02,
            downtime: 5,
        },
        FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.20 },
            FaultSpec::Churn {
                rate: 0.01,
                downtime: 5,
            },
        ]),
    ]
}

/// E12 — graceful degradation under imperfect networks: Byzantine counting
/// (Algorithm 2) versus all four baselines as the fault layer sweeps
/// through message loss, bounded delay and node churn, across `n`.
///
/// No Byzantine nodes are placed: the sweep isolates what an unreliable
/// *network* does to each estimator, the dimension the paper's clean
/// synchronous model cannot express.
pub fn exp_degradation(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E12",
        "Degradation under network faults (loss / delay / churn), no Byzantine nodes",
        &[
            "n",
            "fault",
            "workload",
            "good frac",
            "rel err",
            "rounds",
            "lost",
            "undecided frac",
        ],
    );
    let workloads: Vec<(WorkloadSpec, bool)> = vec![
        (WorkloadSpec::Byzantine, true),
        (
            WorkloadSpec::GeometricSupport {
                ttl: None,
                attack: AttackSpec::None,
            },
            false,
        ),
        (
            WorkloadSpec::ExponentialSupport {
                ttl: None,
                attack: AttackSpec::None,
            },
            false,
        ),
        (
            WorkloadSpec::SpanningTree {
                max_rounds: None,
                attack: AttackSpec::None,
            },
            false,
        ),
        (
            WorkloadSpec::FloodDiameter {
                ttl: None,
                attack: AttackSpec::None,
            },
            false,
        ),
    ];
    for &n in &cfg.n_values {
        for fault in degradation_fault_levels() {
            let label = fault.describe();
            for (workload, is_counting) in &workloads {
                // Counting runs on the full small-world overlay G; the
                // baselines run on the expander H, as everywhere else.
                let topology = if *is_counting {
                    TopologySpec::SmallWorld { n, d: cfg.d }
                } else {
                    TopologySpec::SmallWorldH { n, d: cfg.d }
                };
                let batch = Simulation::builder()
                    .topology(topology)
                    .workload(workload.clone())
                    .fault(fault.clone())
                    .derived_params(cfg.delta, cfg.epsilon)
                    .seeds(SeedPolicy::Sequence {
                        base: cfg.seed ^ 0xE12,
                        count: cfg.trials.max(1) as u32,
                    })
                    .build()
                    .expect("degradation spec")
                    .run_batch()
                    .expect("degradation batch");
                let agg = batch.aggregate_for(n).expect("aggregate");
                let good = agg.good_fraction.map(|g| g.mean);
                let rel_err = summarize(
                    &batch
                        .runs
                        .iter()
                        .filter_map(RunReport::relative_error)
                        .collect::<Vec<_>>(),
                );
                let undecided = summarize(
                    &batch
                        .runs
                        .iter()
                        .map(|r| {
                            1.0 - (r.honest_decided + r.honest_crashed) as f64
                                / r.honest_total.max(1) as f64
                        })
                        .collect::<Vec<_>>(),
                );
                table.push_row(vec![
                    n.to_string(),
                    label.clone(),
                    workload.name().into(),
                    good.map(fmt_f).unwrap_or_else(|| "-".into()),
                    if rel_err.count > 0 {
                        fmt_f(rel_err.mean)
                    } else {
                        "-".into()
                    },
                    fmt_f(agg.rounds.mean),
                    fmt_f(agg.messages_lost.mean),
                    fmt_f(undecided.mean),
                ]);
            }
        }
    }
    table
}

/// E13 — scale study: Byzantine counting (Algorithm 2) under the paper's
/// Byzantine budget with the honest-behaving adversary, on doubling network
/// sizes up to `n_max` (32 768 in the standard configuration).
///
/// This is the empirical check behind the ROADMAP's "as fast as the
/// hardware allows" goal at production sizes: rounds must grow like
/// `O(log n · polyloglog n)` — far sublinearly — while the per-node
/// per-round message rate stays flat (the paper's "small-sized messages"
/// claim at scale).  The companion wall-clock trajectory lives in
/// `BENCH_roundloop.json` (`byzcount-cli bench`); this table keeps the
/// deterministic protocol-level quantities.
pub fn exp_scale(cfg: &ExperimentConfig, n_max: usize) -> Table {
    let mut table = Table::new(
        "E13",
        "Scale study: rounds and message rates of Algorithm 2 on doubling sizes",
        &[
            "n",
            "byz",
            "rounds",
            "messages",
            "msg/node/round",
            "good frac",
            "completed",
        ],
    );
    let mut sizes = Vec::new();
    let mut n = cfg.n_values.first().copied().unwrap_or(1024).max(64);
    while n < n_max {
        sizes.push(n);
        n *= 2;
    }
    sizes.push(n_max);
    let batch = cfg.counting_batch(
        WorkloadSpec::Byzantine,
        AdversarySpec::HonestBehaving,
        &sizes,
    );
    for &n in &sizes {
        let agg = batch.aggregate_for(n).expect("aggregate");
        let rows = counting_rows(&batch, n);
        let byz = rows.first().map(|r| r.byzantine_count).unwrap_or(0);
        let per_node_round = if n > 0 && agg.rounds.mean > 0.0 {
            agg.messages.mean / (n as f64 * agg.rounds.mean)
        } else {
            0.0
        };
        table.push_row(vec![
            n.to_string(),
            byz.to_string(),
            fmt_f(agg.rounds.mean),
            fmt_f(agg.messages.mean),
            fmt_f(per_node_round),
            agg.good_fraction
                .map(|g| fmt_f(g.mean))
                .unwrap_or_else(|| "-".into()),
            format!("{}/{}", agg.completed_runs, agg.runs),
        ]);
    }
    table
}

/// Every experiment with its default workload, in DESIGN.md order.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<Table> {
    let n_mid = cfg.n_values.last().copied().unwrap_or(1024);
    vec![
        exp_theorem1(cfg),
        exp_rounds(cfg),
        exp_approx_factor(
            cfg,
            &[6, 8, 10],
            cfg.n_values.first().copied().unwrap_or(512),
        ),
        exp_baselines(cfg, n_mid),
        exp_structure(cfg),
        exp_expander(cfg),
        exp_discovery(cfg),
        exp_fakechain(cfg, n_mid.min(2048)),
        exp_core(cfg, n_mid.min(2048)),
        exp_phases(cfg, n_mid.min(2048)),
        exp_placement(cfg, n_mid.min(2048)),
        exp_degradation(&ExperimentConfig {
            n_values: vec![n_mid.min(1024)],
            ..cfg.clone()
        }),
        exp_scale(cfg, n_mid),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            n_values: vec![256],
            d: 6,
            delta: 0.6,
            epsilon: 0.1,
            trials: 1,
            seed: 7,
        }
    }

    #[test]
    fn theorem1_quick_run_produces_high_accuracy() {
        let table = exp_theorem1(&tiny());
        assert_eq!(table.rows.len(), 1);
        let good: f64 = table.rows[0][2].parse().unwrap();
        assert!(
            good > 0.5,
            "good fraction {good} too low even for a tiny run"
        );
    }

    #[test]
    fn rounds_table_has_expected_columns() {
        let table = exp_rounds(&tiny());
        assert_eq!(table.headers.len(), 6);
        let rounds: f64 = table.rows[0][1].parse().unwrap();
        assert!(rounds > 10.0);
        // Small messages: a constant number of IDs.
        let max_ids: u32 = table.rows[0][4].parse().unwrap();
        assert!(max_ids <= 64, "messages must stay small, got {max_ids} IDs");
    }

    #[test]
    fn baselines_table_shows_inflation_damage() {
        let cfg = tiny();
        let table = exp_baselines(&cfg, 256);
        // Row 0: geometric honest; row 2: geometric under inflation.
        let honest_err: f64 = table.rows[0][5].parse().unwrap();
        let inflated_err: f64 = table.rows[2][5].parse().unwrap();
        assert!(honest_err < 1.0);
        assert!(
            inflated_err > honest_err,
            "inflation must worsen the estimate"
        );
    }

    #[test]
    fn degradation_curve_is_monotone_under_loss_for_spanning_tree() {
        let table = exp_degradation(&tiny());
        // 6 fault levels × 5 workloads at one size.
        assert_eq!(table.rows.len(), 30);
        let rel_err = |fault: &str, workload: &str| -> f64 {
            let row = table
                .rows
                .iter()
                .find(|r| r[1] == fault && r[2] == workload)
                .unwrap_or_else(|| panic!("missing row {fault}/{workload}"));
            row[4].parse().unwrap_or(f64::INFINITY)
        };
        // The acceptance curve: spanning-tree converge-cast relies on every
        // single hop, so its error must not improve as loss rises — and
        // must be strictly worse at 30% loss than on the perfect network.
        let clean = rel_err("none", "spanning-tree");
        let light = rel_err("loss 0.10", "spanning-tree");
        let heavy = rel_err("loss 0.30", "spanning-tree");
        assert!(clean <= light + 1e-9, "{clean} vs {light}");
        assert!(light <= heavy + 1e-9, "{light} vs {heavy}");
        assert!(heavy > clean, "loss must visibly degrade the count");
        // The fault-free row must match the paper's model: near-exact.
        assert!(clean < 0.05, "clean spanning tree is exact, got {clean}");
    }

    #[test]
    fn scale_table_shows_sublinear_rounds_and_flat_message_rate() {
        let cfg = ExperimentConfig {
            n_values: vec![128],
            ..tiny()
        };
        let table = exp_scale(&cfg, 512);
        // Sizes 128, 256, 512.
        assert_eq!(table.rows.len(), 3);
        let rounds: Vec<f64> = table.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let rate: Vec<f64> = table.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // Rounds grow with n but far sublinearly: quadrupling n must not
        // even double the rounds.
        assert!(rounds[2] > rounds[0], "{rounds:?}");
        assert!(rounds[2] < 2.0 * rounds[0], "{rounds:?}");
        // Per-node per-round traffic stays flat (small-sized messages).
        assert!(rate[2] < 3.0 * rate[0], "{rate:?}");
    }

    #[test]
    fn structure_and_discovery_tables_are_sane() {
        let cfg = tiny();
        let s = exp_structure(&cfg);
        let ltl: f64 = s.rows[0][1].parse().unwrap();
        // Lemma 1 only promises 1 − O(n^{-0.2}); at n = 256 that allows a
        // third of the nodes to be non-tree-like, and across RNG streams the
        // empirical fraction lands anywhere in ~0.74..0.85.
        assert!(ltl > 0.7, "locally-tree-like fraction {ltl} too low");
        let d = exp_discovery(&cfg);
        // Exact reconstruction is structurally impossible at n = 256 (a
        // radius-2k ball of H(n,6) already exceeds n nodes, so no ball is
        // tree-like and Lemma 3's premise never holds); it climbs towards 1
        // at larger n (≈0.88 at n = 4096).  What the protocol *needs* is
        // that almost no true H-edge is missed — flooding tolerates extra
        // edges but not lost ones.
        let missed: f64 = d.rows[0][2].parse().unwrap();
        let spurious: f64 = d.rows[0][3].parse().unwrap();
        assert!(missed < 0.05, "missed H-edge fraction {missed} too high");
        assert!(spurious < 2.0, "spurious H-edge ratio {spurious} too high");
    }
}
