//! Small statistics helpers for aggregating trial results.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
}

/// Compute summary statistics (sample standard deviation).
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary::default();
    }
    let count = values.len();
    let mean = values.iter().sum::<f64>() / count as f64;
    let var = if count > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
    } else {
        0.0
    };
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Summary {
        count,
        mean,
        std_dev: var.sqrt(),
        min: sorted[0],
        max: sorted[count - 1],
        median: percentile_sorted(&sorted, 50.0),
    }
}

/// Percentile (0–100) of a pre-sorted sample via linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn empty_and_singleton_samples() {
        assert_eq!(summarize(&[]), Summary::default());
        let s = summarize(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 50.0) - 5.0).abs() < 1e-12);
        assert!((percentile(&v, 0.0) - 0.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 10.0).abs() < 1e-12);
        let v = [3.0, 1.0, 2.0];
        assert!((percentile(&v, 50.0) - 2.0).abs() < 1e-12);
    }
}
