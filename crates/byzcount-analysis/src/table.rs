//! Paper-style result tables.
//!
//! Every experiment produces a [`Table`]; the CLI and the benchmark binaries
//! print them as aligned ASCII/Markdown, and `EXPERIMENTS.md` records them.

use serde::{Deserialize, Serialize};

/// A rectangular table of results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment identifier (e.g. "E1").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured Markdown table preceded by its title.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("### {}: {}\n\n", self.id, self.title);
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Serialise to JSON for machine consumption.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialisation cannot fail")
    }
}

/// Format a float with 3 significant decimals (helper for experiment code).
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_is_aligned() {
        let mut t = Table::new("E0", "demo", &["n", "value"]);
        t.push_row(vec!["1024".into(), "0.5".into()]);
        t.push_row(vec!["16".into(), "123.456".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0: demo"));
        assert!(md.contains("| n    | value   |"));
        assert!(md.contains("| 16   | 123.456 |"));
        // Header separator present.
        assert!(md.contains("| ---- | ------- |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("E1", "x", &["a"]);
        t.push_row(vec!["y".into()]);
        let parsed: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.123456), "0.123");
        assert_eq!(fmt_f(12345.6), "12346");
    }
}
