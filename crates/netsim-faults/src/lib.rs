//! # netsim-faults
//!
//! Composable, deterministic fault injection for the synchronous engine:
//! the network itself misbehaves, instead of (or in addition to) the nodes.
//!
//! The paper's model is a clean synchronous network — every message sent in
//! round `r` arrives by the end of round `r`, and only *nodes* are faulty.
//! Real deployments are not so kind: packets drop, links stall, peers churn
//! in and out, and whole segments partition.  This crate models those
//! imperfections as a [`FaultPlan`]: a deterministic, seed-derived stream of
//! per-round fault decisions that the engine consults between outbox
//! collection and inbox delivery.
//!
//! Four composable primitives cover the classic imperfect-network axes:
//!
//! * [`IidLoss`] — every honest envelope is dropped independently with a
//!   fixed probability (per-edge i.i.d. message loss);
//! * [`RandomDelay`] — envelopes are delivered up to `Δ` rounds late,
//!   relaxing synchrony into `Δ`-bounded asynchrony;
//! * [`NodeChurn`] — honest nodes fail-stop at random and rejoin after a
//!   fixed downtime with their protocol state reset (a fresh peer);
//! * [`BisectionPartition`] — for a window of rounds the network splits
//!   into two seed-derived halves that cannot hear each other.
//!
//! [`ComposedFaults`] stacks any number of plans; [`FaultSpec`] is the
//! JSON-serializable description that the spec layer embeds in run specs
//! and turns into a plan with [`FaultSpec::build_plan`].
//!
//! Two invariants the engine relies on:
//!
//! * **Determinism** — every plan draws from its own ChaCha8 stream derived
//!   from the master seed, and plans are only consulted from the engine's
//!   sequential delivery phase, so a faulty run is still a pure function of
//!   `(topology, protocol, adversary, fault spec, seed)`.
//! * **Honest traffic only** — faults model an unreliable *network*, not
//!   extra adversarial power; the engine never routes Byzantine envelopes
//!   through a plan (the adversary already controls those), and churn never
//!   touches Byzantine nodes.

mod plan;
mod plans;
mod spec;

pub use plan::{ChurnEvent, EnvelopeFate, FaultPlan, NoFaults};
pub use plans::{BisectionPartition, ComposedFaults, IidLoss, NodeChurn, RandomDelay};
pub use spec::FaultSpec;

/// SplitMix64 seed derivation, so each fault component gets an independent
/// RNG stream from one master seed (same scheme as the engine's per-node
/// streams).
pub(crate) fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}
