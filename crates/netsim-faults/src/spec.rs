//! [`FaultSpec`]: the JSON-serializable description of a fault plan.
//!
//! A spec is plain data; [`FaultSpec::build_plan`] turns it into the
//! executable [`FaultPlan`], deriving one independent RNG stream per
//! component from a single fault seed.  Version-1 run specs predate the
//! fault layer entirely, so deserialization treats a missing/`null` value
//! as [`FaultSpec::None`] — old specs keep parsing and mean "perfect
//! network", exactly as they always did.

use crate::derive_seed;
use crate::plan::FaultPlan;
use crate::plans::{BisectionPartition, ComposedFaults, IidLoss, NodeChurn, RandomDelay};
use serde::{Deserialize, Error, Map, Number, Serialize, Value};

/// What the network does to honest traffic (nothing, by default).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum FaultSpec {
    /// Perfect synchronous delivery (the paper's model).
    #[default]
    None,
    /// Per-envelope i.i.d. loss with probability `rate`.
    Loss {
        /// Drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Bounded random delay: with probability `rate` an envelope arrives
    /// uniformly `1..=max_delay` rounds late.
    Delay {
        /// Maximum delay `Δ` in rounds (≥ 1).
        max_delay: u64,
        /// Probability a given envelope is delayed.
        rate: f64,
    },
    /// Node churn: honest nodes fail-stop with per-round probability `rate`
    /// and rejoin after `downtime` rounds with a fresh state.
    Churn {
        /// Per-node per-round crash probability.
        rate: f64,
        /// Rounds a churned node stays down (≥ 1).
        downtime: u64,
    },
    /// A bisection partition active during rounds
    /// `start..start + duration`.
    Partition {
        /// First partitioned round.
        start: u64,
        /// Window length in rounds.
        duration: u64,
    },
    /// All of the listed faults at once.
    Compose(Vec<FaultSpec>),
}

impl FaultSpec {
    /// True when the spec injects nothing at all (structurally — a `Loss`
    /// with rate 0.0 still installs a plan, it just never fires).
    pub fn is_none(&self) -> bool {
        match self {
            FaultSpec::None => true,
            FaultSpec::Compose(parts) => parts.iter().all(FaultSpec::is_none),
            _ => false,
        }
    }

    /// Check ranges: probabilities in `[0, 1]`, delays/downtimes ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        let probability = |what: &str, p: f64| -> Result<(), String> {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{what} must be a probability in [0, 1], got {p}"))
            }
        };
        match self {
            FaultSpec::None => Ok(()),
            FaultSpec::Loss { rate } => probability("loss rate", *rate),
            FaultSpec::Delay { max_delay, rate } => {
                probability("delay rate", *rate)?;
                if *max_delay == 0 {
                    return Err("delay max_delay must be at least 1 round".into());
                }
                Ok(())
            }
            FaultSpec::Churn { rate, downtime } => {
                probability("churn rate", *rate)?;
                if *downtime == 0 {
                    return Err("churn downtime must be at least 1 round".into());
                }
                Ok(())
            }
            FaultSpec::Partition { duration, .. } => {
                if *duration == 0 {
                    return Err("partition duration must be at least 1 round".into());
                }
                Ok(())
            }
            FaultSpec::Compose(parts) => parts.iter().try_for_each(FaultSpec::validate),
        }
    }

    /// Short human-readable label (used by experiment tables).
    pub fn describe(&self) -> String {
        match self {
            FaultSpec::None => "none".into(),
            FaultSpec::Loss { rate } => format!("loss {rate:.2}"),
            FaultSpec::Delay { max_delay, rate } => format!("delay<={max_delay} @{rate:.2}"),
            FaultSpec::Churn { rate, downtime } => format!("churn {rate:.3} dt={downtime}"),
            FaultSpec::Partition { start, duration } => {
                format!("partition r{start}+{duration}")
            }
            FaultSpec::Compose(parts) => parts
                .iter()
                .map(FaultSpec::describe)
                .collect::<Vec<_>>()
                .join(" + "),
        }
    }

    /// Materialize the plan for a network of `n` nodes.
    ///
    /// `honest[i]` marks the nodes faults may touch (churn never crashes a
    /// Byzantine node — the adversary owns those).  Every component draws
    /// from an independent sub-stream of `seed`, in declaration order, so
    /// the same spec and seed always produce the same fault stream.
    /// Returns `None` when the spec is structurally fault-free.
    pub fn build_plan(&self, n: usize, honest: &[bool], seed: u64) -> Option<Box<dyn FaultPlan>> {
        let mut plans: Vec<Box<dyn FaultPlan>> = Vec::new();
        let mut stream = 0u64;
        self.collect_plans(n, honest, seed, &mut stream, &mut plans);
        match plans.len() {
            0 => None,
            1 => plans.pop(),
            _ => Some(Box::new(ComposedFaults::new(plans))),
        }
    }

    fn collect_plans(
        &self,
        n: usize,
        honest: &[bool],
        seed: u64,
        stream: &mut u64,
        out: &mut Vec<Box<dyn FaultPlan>>,
    ) {
        fn sub_seed(seed: u64, stream: &mut u64) -> u64 {
            let s = derive_seed(seed, *stream);
            *stream += 1;
            s
        }
        match self {
            FaultSpec::None => {}
            FaultSpec::Loss { rate } => {
                out.push(Box::new(IidLoss::new(*rate, sub_seed(seed, stream))))
            }
            FaultSpec::Delay { max_delay, rate } => out.push(Box::new(RandomDelay::new(
                *max_delay,
                *rate,
                sub_seed(seed, stream),
            ))),
            FaultSpec::Churn { rate, downtime } => out.push(Box::new(NodeChurn::new(
                *rate,
                *downtime,
                honest,
                sub_seed(seed, stream),
            ))),
            FaultSpec::Partition { start, duration } => out.push(Box::new(
                BisectionPartition::new(n, *start, *duration, sub_seed(seed, stream)),
            )),
            FaultSpec::Compose(parts) => {
                for part in parts {
                    part.collect_plans(n, honest, seed, stream, out);
                }
            }
        }
    }
}

// The serde impls are written by hand (rather than derived) for one
// backwards-compatibility reason: a missing or `null` value must read as
// `FaultSpec::None`, so version-1 specs — which have no `fault` field at
// all — keep deserializing.  The wire shapes otherwise match what the
// derive would produce (externally tagged variants).

impl Serialize for FaultSpec {
    fn to_value(&self) -> Value {
        fn tagged(tag: &str, inner: Value) -> Value {
            let mut m = Map::new();
            m.insert(tag.to_string(), inner);
            Value::Obj(m)
        }
        fn num_f(v: f64) -> Value {
            Value::Num(Number::F(v))
        }
        fn num_u(v: u64) -> Value {
            Value::Num(Number::U(v))
        }
        match self {
            FaultSpec::None => Value::Str("None".into()),
            FaultSpec::Loss { rate } => {
                let mut m = Map::new();
                m.insert("rate".into(), num_f(*rate));
                tagged("Loss", Value::Obj(m))
            }
            FaultSpec::Delay { max_delay, rate } => {
                let mut m = Map::new();
                m.insert("max_delay".into(), num_u(*max_delay));
                m.insert("rate".into(), num_f(*rate));
                tagged("Delay", Value::Obj(m))
            }
            FaultSpec::Churn { rate, downtime } => {
                let mut m = Map::new();
                m.insert("downtime".into(), num_u(*downtime));
                m.insert("rate".into(), num_f(*rate));
                tagged("Churn", Value::Obj(m))
            }
            FaultSpec::Partition { start, duration } => {
                let mut m = Map::new();
                m.insert("duration".into(), num_u(*duration));
                m.insert("start".into(), num_u(*start));
                tagged("Partition", Value::Obj(m))
            }
            FaultSpec::Compose(parts) => tagged(
                "Compose",
                Value::Arr(parts.iter().map(Serialize::to_value).collect()),
            ),
        }
    }
}

impl Deserialize for FaultSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        fn field_f64(m: &Map, key: &str) -> Result<f64, Error> {
            serde::from_value_field(m, key)
        }
        fn field_u64(m: &Map, key: &str) -> Result<u64, Error> {
            serde::from_value_field(m, key)
        }
        match v {
            // v1 specs have no fault field: absent/null means "no faults".
            Value::Null => Ok(FaultSpec::None),
            Value::Str(s) if s == "None" || s == "none" => Ok(FaultSpec::None),
            Value::Str(other) => Err(Error::msg(format!(
                "unknown unit variant `{other}` of FaultSpec"
            ))),
            Value::Obj(m) if m.len() == 1 => {
                let (tag, inner) = m.iter().next().expect("len checked");
                match tag.as_str() {
                    "Loss" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(FaultSpec::Loss {
                            rate: field_f64(mm, "rate")?,
                        })
                    }
                    "Delay" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(FaultSpec::Delay {
                            max_delay: field_u64(mm, "max_delay")?,
                            rate: field_f64(mm, "rate")?,
                        })
                    }
                    "Churn" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(FaultSpec::Churn {
                            rate: field_f64(mm, "rate")?,
                            downtime: field_u64(mm, "downtime")?,
                        })
                    }
                    "Partition" => {
                        let mm = inner
                            .as_obj()
                            .ok_or_else(|| Error::expected("object", inner))?;
                        Ok(FaultSpec::Partition {
                            start: field_u64(mm, "start")?,
                            duration: field_u64(mm, "duration")?,
                        })
                    }
                    "Compose" => Ok(FaultSpec::Compose(Deserialize::from_value(inner)?)),
                    other => Err(Error::msg(format!(
                        "unknown variant `{other}` of FaultSpec"
                    ))),
                }
            }
            other => Err(Error::expected(
                "FaultSpec (string or tagged object)",
                other,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::EnvelopeFate;
    use netsim_graph::NodeId;

    fn round_trip(spec: &FaultSpec) -> FaultSpec {
        FaultSpec::from_value(&spec.to_value()).expect("round trip")
    }

    #[test]
    fn every_variant_round_trips() {
        for spec in [
            FaultSpec::None,
            FaultSpec::Loss { rate: 0.25 },
            FaultSpec::Delay {
                max_delay: 3,
                rate: 0.5,
            },
            FaultSpec::Churn {
                rate: 0.01,
                downtime: 6,
            },
            FaultSpec::Partition {
                start: 4,
                duration: 10,
            },
            FaultSpec::Compose(vec![
                FaultSpec::Loss { rate: 0.1 },
                FaultSpec::Churn {
                    rate: 0.02,
                    downtime: 2,
                },
            ]),
        ] {
            assert_eq!(round_trip(&spec), spec);
        }
    }

    #[test]
    fn null_and_missing_read_as_none() {
        assert_eq!(
            FaultSpec::from_value(&Value::Null).unwrap(),
            FaultSpec::None
        );
        assert_eq!(
            FaultSpec::from_value(&Value::Str("none".into())).unwrap(),
            FaultSpec::None
        );
        assert!(FaultSpec::from_value(&Value::Str("garbage".into())).is_err());
    }

    #[test]
    fn validation_catches_bad_ranges() {
        assert!(FaultSpec::Loss { rate: 1.5 }.validate().is_err());
        assert!(FaultSpec::Loss { rate: -0.1 }.validate().is_err());
        assert!(FaultSpec::Loss { rate: f64::NAN }.validate().is_err());
        assert!(FaultSpec::Delay {
            max_delay: 0,
            rate: 0.5
        }
        .validate()
        .is_err());
        assert!(FaultSpec::Churn {
            rate: 0.1,
            downtime: 0
        }
        .validate()
        .is_err());
        assert!(FaultSpec::Compose(vec![FaultSpec::Loss { rate: 2.0 }])
            .validate()
            .is_err());
        assert!(FaultSpec::Compose(vec![FaultSpec::Loss { rate: 0.2 }])
            .validate()
            .is_ok());
    }

    #[test]
    fn none_and_empty_compositions_build_no_plan() {
        let honest = vec![true; 10];
        assert!(FaultSpec::None.build_plan(10, &honest, 1).is_none());
        assert!(FaultSpec::Compose(vec![FaultSpec::None, FaultSpec::None])
            .build_plan(10, &honest, 1)
            .is_none());
        assert!(FaultSpec::None.is_none());
        assert!(FaultSpec::Compose(vec![]).is_none());
        assert!(!FaultSpec::Loss { rate: 0.0 }.is_none());
    }

    #[test]
    fn built_plans_are_seed_deterministic() {
        let honest = vec![true; 16];
        let spec = FaultSpec::Compose(vec![
            FaultSpec::Loss { rate: 0.4 },
            FaultSpec::Delay {
                max_delay: 2,
                rate: 0.3,
            },
        ]);
        let sample = |seed: u64| -> Vec<EnvelopeFate> {
            let mut plan = spec.build_plan(16, &honest, seed).expect("plan");
            (0..200)
                .map(|i| plan.envelope_fate(i, NodeId(0), NodeId(1)))
                .collect()
        };
        assert_eq!(sample(9), sample(9));
        assert_ne!(sample(9), sample(10));
    }
}
