//! The [`FaultPlan`] trait: what the engine asks, and what a plan answers.

use netsim_graph::NodeId;

/// What happens to one honest envelope in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvelopeFate {
    /// Delivered normally (this round, for consumption next round).
    Deliver,
    /// Silently lost.
    Drop,
    /// Delivered `rounds` rounds late (`Delay(0)` is equivalent to
    /// [`EnvelopeFate::Deliver`]).
    Delay(u64),
}

/// A churn transition requested at a round boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The node fail-stops: it neither sends nor receives until recovered.
    Crash(NodeId),
    /// The node rejoins with a fresh protocol state (state reset).
    Recover(NodeId),
}

/// A deterministic stream of fault decisions for one execution.
///
/// The engine calls [`begin_round`](FaultPlan::begin_round) once per round
/// (before any node steps) and [`envelope_fate`](FaultPlan::envelope_fate)
/// once per *validated honest* envelope during delivery.  Both are called
/// from sequential engine code in a canonical order, so a plan may keep its
/// own RNG and remain reproducible.
///
/// Plans never see Byzantine traffic: the adversary path bypasses the fault
/// layer entirely, and the engine ignores churn events that name Byzantine
/// nodes.
pub trait FaultPlan: Send {
    /// Churn transitions to apply at the boundary into `round`.
    fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
        let _ = round;
        Vec::new()
    }

    /// The fate of one honest envelope queued in `round`.
    fn envelope_fate(&mut self, round: u64, from: NodeId, to: NodeId) -> EnvelopeFate {
        let _ = (round, from, to);
        EnvelopeFate::Deliver
    }
}

/// The do-nothing plan: every envelope is delivered, nobody churns.
///
/// Installing `NoFaults` exercises the fault layer's dispatch without
/// changing behaviour — the benchmarks use it to price the indirection.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultPlan for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_transparent() {
        let mut plan = NoFaults;
        assert!(plan.begin_round(0).is_empty());
        assert_eq!(
            plan.envelope_fate(3, NodeId(1), NodeId(2)),
            EnvelopeFate::Deliver
        );
    }
}
