//! The concrete fault plans: loss, delay, churn, partition, composition.

use crate::plan::{ChurnEvent, EnvelopeFate, FaultPlan};
use netsim_graph::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-envelope i.i.d. message loss: every honest envelope is dropped
/// independently with probability `rate`.
#[derive(Clone, Debug)]
pub struct IidLoss {
    rate: f64,
    rng: ChaCha8Rng,
}

impl IidLoss {
    /// Loss with probability `rate` (clamped to `[0, 1]`), drawing from a
    /// stream derived from `seed`.
    pub fn new(rate: f64, seed: u64) -> Self {
        IidLoss {
            rate: rate.clamp(0.0, 1.0),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl FaultPlan for IidLoss {
    fn envelope_fate(&mut self, _round: u64, _from: NodeId, _to: NodeId) -> EnvelopeFate {
        if self.rng.gen_bool(self.rate) {
            EnvelopeFate::Drop
        } else {
            EnvelopeFate::Deliver
        }
    }
}

/// Bounded random delay: with probability `rate` an envelope arrives
/// uniformly `1..=max_delay` rounds late.  This relaxes the synchronous
/// model into `Δ`-bounded asynchrony while keeping runs deterministic.
#[derive(Clone, Debug)]
pub struct RandomDelay {
    max_delay: u64,
    rate: f64,
    rng: ChaCha8Rng,
}

impl RandomDelay {
    /// Delay up to `max_delay` rounds (at least 1) with probability `rate`.
    pub fn new(max_delay: u64, rate: f64, seed: u64) -> Self {
        RandomDelay {
            max_delay: max_delay.max(1),
            rate: rate.clamp(0.0, 1.0),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl FaultPlan for RandomDelay {
    fn envelope_fate(&mut self, _round: u64, _from: NodeId, _to: NodeId) -> EnvelopeFate {
        if self.rng.gen_bool(self.rate) {
            EnvelopeFate::Delay(self.rng.gen_range(1..=self.max_delay))
        } else {
            EnvelopeFate::Deliver
        }
    }
}

/// Node churn: at every round boundary each *up*, honest node fail-stops
/// with probability `rate`; a churned node stays down for `downtime` rounds
/// and then rejoins with a fresh protocol state.
#[derive(Clone, Debug)]
pub struct NodeChurn {
    rate: f64,
    downtime: u64,
    /// Nodes the plan is allowed to churn (honest nodes).
    eligible: Vec<bool>,
    /// `Some(round)` = down until the boundary into `round`.
    down_until: Vec<Option<u64>>,
    rng: ChaCha8Rng,
}

impl NodeChurn {
    /// Churn over `eligible` nodes (pass the honest mask) with per-round
    /// crash probability `rate` and a fixed `downtime` (at least 1 round).
    pub fn new(rate: f64, downtime: u64, eligible: &[bool], seed: u64) -> Self {
        NodeChurn {
            rate: rate.clamp(0.0, 1.0),
            downtime: downtime.max(1),
            eligible: eligible.to_vec(),
            down_until: vec![None; eligible.len()],
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl FaultPlan for NodeChurn {
    fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        for i in 0..self.eligible.len() {
            match self.down_until[i] {
                Some(until) if round >= until => {
                    self.down_until[i] = None;
                    events.push(ChurnEvent::Recover(NodeId::from_index(i)));
                }
                Some(_) => {}
                None => {
                    if self.eligible[i] && self.rng.gen_bool(self.rate) {
                        self.down_until[i] = Some(round + self.downtime);
                        events.push(ChurnEvent::Crash(NodeId::from_index(i)));
                    }
                }
            }
        }
        events
    }
}

/// A round-windowed bisection: during rounds `start..start + duration` the
/// node set is split into two seed-derived halves and every envelope that
/// crosses the cut is dropped.
#[derive(Clone, Debug)]
pub struct BisectionPartition {
    side_a: Vec<bool>,
    start: u64,
    end: u64,
}

impl BisectionPartition {
    /// Partition `n` nodes into two random halves (derived from `seed`) for
    /// the window `start..start + duration`.
    pub fn new(n: usize, start: u64, duration: u64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut side_a = vec![false; n];
        for &i in order.iter().take(n / 2) {
            side_a[i] = true;
        }
        BisectionPartition {
            side_a,
            start,
            end: start.saturating_add(duration),
        }
    }

    /// Which side each node is on (true = side A).
    pub fn side_a(&self) -> &[bool] {
        &self.side_a
    }
}

impl FaultPlan for BisectionPartition {
    fn envelope_fate(&mut self, round: u64, from: NodeId, to: NodeId) -> EnvelopeFate {
        let active = round >= self.start && round < self.end;
        if active && self.side_a[from.index()] != self.side_a[to.index()] {
            EnvelopeFate::Drop
        } else {
            EnvelopeFate::Deliver
        }
    }
}

/// A stack of plans applied together.
///
/// Every constituent plan is consulted for every decision — even after an
/// earlier plan already dropped the envelope — so each plan's RNG stream
/// advances identically regardless of the others' verdicts (composition
/// stays deterministic and order-insensitive for loss).  `Drop` dominates;
/// otherwise delays add up.
pub struct ComposedFaults {
    plans: Vec<Box<dyn FaultPlan>>,
}

impl ComposedFaults {
    /// Compose `plans` (applied in order).
    pub fn new(plans: Vec<Box<dyn FaultPlan>>) -> Self {
        ComposedFaults { plans }
    }
}

impl FaultPlan for ComposedFaults {
    fn begin_round(&mut self, round: u64) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        for plan in &mut self.plans {
            events.extend(plan.begin_round(round));
        }
        events
    }

    fn envelope_fate(&mut self, round: u64, from: NodeId, to: NodeId) -> EnvelopeFate {
        let mut dropped = false;
        let mut delay = 0u64;
        for plan in &mut self.plans {
            match plan.envelope_fate(round, from, to) {
                EnvelopeFate::Deliver => {}
                EnvelopeFate::Drop => dropped = true,
                EnvelopeFate::Delay(d) => delay = delay.saturating_add(d),
            }
        }
        if dropped {
            EnvelopeFate::Drop
        } else if delay > 0 {
            EnvelopeFate::Delay(delay)
        } else {
            EnvelopeFate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(plan: &mut dyn FaultPlan, count: usize) -> Vec<EnvelopeFate> {
        (0..count)
            .map(|i| plan.envelope_fate(i as u64, NodeId(0), NodeId(1)))
            .collect()
    }

    #[test]
    fn loss_rate_zero_and_one_are_exact() {
        let mut never = IidLoss::new(0.0, 1);
        assert!(fates(&mut never, 200)
            .iter()
            .all(|f| *f == EnvelopeFate::Deliver));
        let mut always = IidLoss::new(1.0, 1);
        assert!(fates(&mut always, 200)
            .iter()
            .all(|f| *f == EnvelopeFate::Drop));
    }

    #[test]
    fn loss_is_deterministic_in_the_seed() {
        let mut a = IidLoss::new(0.3, 42);
        let mut b = IidLoss::new(0.3, 42);
        let mut c = IidLoss::new(0.3, 43);
        let fa = fates(&mut a, 500);
        assert_eq!(fa, fates(&mut b, 500));
        assert_ne!(fa, fates(&mut c, 500), "different seeds, different stream");
        let dropped = fa.iter().filter(|f| **f == EnvelopeFate::Drop).count();
        assert!((100..200).contains(&dropped), "~30% of 500, got {dropped}");
    }

    #[test]
    fn delay_stays_within_bounds() {
        let mut plan = RandomDelay::new(4, 1.0, 7);
        for fate in fates(&mut plan, 300) {
            match fate {
                EnvelopeFate::Delay(d) => assert!((1..=4).contains(&d)),
                other => panic!("rate 1.0 must always delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn churn_crashes_then_recovers_after_downtime() {
        let eligible = vec![true; 8];
        let mut plan = NodeChurn::new(1.0, 3, &eligible, 5);
        let crashed = plan.begin_round(0);
        assert_eq!(crashed.len(), 8, "rate 1.0 crashes everyone");
        assert!(matches!(crashed[0], ChurnEvent::Crash(_)));
        assert!(plan.begin_round(1).is_empty(), "still down");
        assert!(plan.begin_round(2).is_empty(), "still down");
        let recovered = plan.begin_round(3);
        assert_eq!(recovered.len(), 8, "downtime over, everyone rejoins");
        assert!(matches!(recovered[0], ChurnEvent::Recover(_)));
    }

    #[test]
    fn churn_skips_ineligible_nodes() {
        let mut eligible = vec![true; 6];
        eligible[2] = false;
        let mut plan = NodeChurn::new(1.0, 2, &eligible, 1);
        let crashed = plan.begin_round(0);
        assert_eq!(crashed.len(), 5);
        assert!(!crashed.contains(&ChurnEvent::Crash(NodeId(2))));
    }

    #[test]
    fn partition_drops_exactly_the_cut_within_the_window() {
        let plan = BisectionPartition::new(10, 2, 3, 9);
        let side = plan.side_a().to_vec();
        assert_eq!(side.iter().filter(|&&s| s).count(), 5, "a bisection");
        let mut plan = plan;
        let (a, b) = {
            let a = side.iter().position(|&s| s).unwrap();
            let b = side.iter().position(|&s| !s).unwrap();
            (NodeId::from_index(a), NodeId::from_index(b))
        };
        // Outside the window: everything flows.
        assert_eq!(plan.envelope_fate(1, a, b), EnvelopeFate::Deliver);
        assert_eq!(plan.envelope_fate(5, a, b), EnvelopeFate::Deliver);
        // Inside: the cut drops, same-side traffic flows.
        assert_eq!(plan.envelope_fate(2, a, b), EnvelopeFate::Drop);
        assert_eq!(plan.envelope_fate(4, b, a), EnvelopeFate::Drop);
        assert_eq!(plan.envelope_fate(3, a, a), EnvelopeFate::Deliver);
    }

    #[test]
    fn composition_drop_dominates_and_delays_add() {
        struct Fixed(EnvelopeFate);
        impl FaultPlan for Fixed {
            fn envelope_fate(&mut self, _: u64, _: NodeId, _: NodeId) -> EnvelopeFate {
                self.0
            }
        }
        let mut both_delay = ComposedFaults::new(vec![
            Box::new(Fixed(EnvelopeFate::Delay(2))),
            Box::new(Fixed(EnvelopeFate::Delay(3))),
        ]);
        assert_eq!(
            both_delay.envelope_fate(0, NodeId(0), NodeId(1)),
            EnvelopeFate::Delay(5)
        );
        let mut drop_wins = ComposedFaults::new(vec![
            Box::new(Fixed(EnvelopeFate::Delay(2))),
            Box::new(Fixed(EnvelopeFate::Drop)),
        ]);
        assert_eq!(
            drop_wins.envelope_fate(0, NodeId(0), NodeId(1)),
            EnvelopeFate::Drop
        );
    }
}
