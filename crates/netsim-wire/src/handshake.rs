//! The versioned wire handshake.
//!
//! A generalization of the campaign service's JSON hello to the binary
//! layer.  Both peers send a [`WireHello`] as the first frame and check
//! the peer's against their own:
//!
//! * **magic**: four fixed bytes up front, so a peer speaking a
//!   different protocol entirely (say, a line-delimited JSON client
//!   dialed at a shard port) is rejected on the first frame instead of
//!   producing confusing downstream errors;
//! * **major** — strict: a differing major means the frame vocabulary
//!   itself changed, the connection must close;
//! * **minor** — additive: future minors may add message kinds; either
//!   side simply never sees the ones it does not know;
//! * **`spec_version`** — the *payload schema* version (the run-spec
//!   schema for campaign traffic, the envelope schema for shard
//!   traffic).  A peer speaking a **newer** schema is rejected at
//!   handshake time — this side would otherwise accept the session and
//!   then fail mid-stream with a parse error.  An *older* peer is fine:
//!   schemas migrate forward.  [`SPEC_VERSION_ANY`] opts out for
//!   payload-schema-agnostic channels.
//!
//! Because **both** peers apply the newer-is-rejected rule to each
//! other, two pinned (non-wildcard) peers end up agreeing exactly.

use crate::codec::{Reader, Wire};
use crate::frame::{read_frame, write_frame};
use crate::WireError;
use std::io::{Read, Write};

/// First bytes of every hello: protocol magic + format generation.
pub const WIRE_MAGIC: [u8; 4] = *b"NSW1";
/// Wire-format major version; peers must match exactly.
pub const WIRE_MAJOR: u16 = 1;
/// Wire-format minor version; additive changes only.  Minor 1 added the
/// optional trailing [`ShardAssignment`] to the hello (a minor-0 hello
/// is byte-identical to a minor-1 hello carrying no assignment).
pub const WIRE_MINOR: u16 = 1;
/// `spec_version` wildcard: this peer carries no payload schema pin.
pub const SPEC_VERSION_ANY: u32 = 0;

/// A coordinator's shard assignment, carried in its hello (minor ≥ 1) so
/// a process-level shard worker is stateless until the handshake: the
/// node range it owns, the determinism anchors (engine seed, initial
/// crashes), and an opaque application payload (the serialized run spec)
/// from which it rebuilds its slice of the simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardAssignment {
    /// First node id of the shard's contiguous range.
    pub start: u32,
    /// One past the last node id of the range.
    pub end: u32,
    /// Total node count of the run (cross-checked against the rebuilt
    /// topology before any envelope flows).
    pub n: u32,
    /// The engine seed: per-node RNG sub-streams derive from it by
    /// global node id, so every transport yields identical randomness.
    pub seed: u64,
    /// Keep pristine state copies for churn recovery.
    pub pristine: bool,
    /// Global ids (within the range) of nodes that start crashed.
    pub crashed: Vec<u32>,
    /// Opaque application bytes (the coordinator's serialized spec).
    pub payload: Vec<u8>,
}

impl Wire for ShardAssignment {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
        self.n.encode(out);
        self.seed.encode(out);
        self.pristine.encode(out);
        self.crashed.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardAssignment {
            start: u32::decode(r)?,
            end: u32::decode(r)?,
            n: u32::decode(r)?,
            seed: u64::decode(r)?,
            pristine: bool::decode(r)?,
            crashed: Vec::<u32>::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// The handshake frame body (sent by both peers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireHello {
    /// Wire-format major version; must equal the peer's.
    pub major: u16,
    /// Wire-format minor version; informational (additive only).
    pub minor: u16,
    /// Payload schema version ([`SPEC_VERSION_ANY`] = unpinned).
    pub spec_version: u32,
    /// Coordinator → worker shard assignment (minor ≥ 1, additive:
    /// absent bytes decode as `None`, `None` encodes as absent bytes).
    pub assignment: Option<ShardAssignment>,
}

impl WireHello {
    /// This build's hello, pinned to the given payload schema.
    pub fn current(spec_version: u32) -> Self {
        WireHello {
            major: WIRE_MAJOR,
            minor: WIRE_MINOR,
            spec_version,
            assignment: None,
        }
    }

    /// [`current`](Self::current) carrying a shard assignment.
    pub fn with_assignment(spec_version: u32, assignment: ShardAssignment) -> Self {
        WireHello {
            assignment: Some(assignment),
            ..Self::current(spec_version)
        }
    }

    /// Apply the compatibility rules to a peer's hello (`self` is the
    /// peer's, `ours` this side's).
    pub fn check_compatible(&self, ours: &WireHello) -> Result<(), WireError> {
        if self.major != ours.major {
            return Err(WireError::Incompatible(format!(
                "wire major {} (this side speaks {})",
                self.major, ours.major
            )));
        }
        // A differing minor — including a future one — is fine by
        // construction: minors only add.
        check_spec_version(ours.spec_version, self.spec_version)
    }
}

/// The shared `spec_version` rule, also applied by the campaign hello:
/// a peer speaking a **newer** schema than ours is rejected (we could
/// not parse its payloads); an older or equal one is accepted (schemas
/// migrate forward); [`SPEC_VERSION_ANY`] on either side skips the
/// check.
pub fn check_spec_version(ours: u32, theirs: u32) -> Result<(), WireError> {
    if ours == SPEC_VERSION_ANY || theirs == SPEC_VERSION_ANY {
        return Ok(());
    }
    if theirs > ours {
        return Err(WireError::Incompatible(format!(
            "peer speaks spec schema v{theirs}, newer than our v{ours}: \
             its payloads would fail to parse mid-stream"
        )));
    }
    Ok(())
}

impl Wire for WireHello {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&WIRE_MAGIC);
        self.major.encode(out);
        self.minor.encode(out);
        self.spec_version.encode(out);
        // Additive tail (minor 1): a `None` assignment encodes as *no*
        // bytes at all, keeping the frame byte-identical to a minor-0
        // hello; `Some` appends a presence byte plus the assignment.
        if let Some(assignment) = &self.assignment {
            out.push(1);
            assignment.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.take(4)?;
        if magic != WIRE_MAGIC {
            return Err(WireError::Corrupt(format!(
                "bad hello magic {magic:02x?} (expected {WIRE_MAGIC:02x?})"
            )));
        }
        let major = u16::decode(r)?;
        let minor = u16::decode(r)?;
        let spec_version = u32::decode(r)?;
        let assignment = if r.remaining() > 0 {
            match u8::decode(r)? {
                0 => None,
                1 => Some(ShardAssignment::decode(r)?),
                tag => {
                    return Err(WireError::Corrupt(format!(
                        "bad hello assignment presence byte {tag}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(WireHello {
            major,
            minor,
            spec_version,
            assignment,
        })
    }
}

/// Send `hello` as one frame.
pub fn send_hello<W: Write>(w: &mut W, hello: &WireHello) -> Result<(), WireError> {
    write_frame(w, &crate::codec::encode_to_vec(hello))
}

/// Receive the peer's hello frame (without checking compatibility).
pub fn recv_hello<R: Read>(r: &mut R) -> Result<WireHello, WireError> {
    let mut buf = Vec::new();
    read_frame(r, &mut buf)?;
    crate::codec::decode_from_slice(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_over_frames() {
        let mut stream = Vec::new();
        let hello = WireHello::current(6);
        send_hello(&mut stream, &hello).unwrap();
        let back = recv_hello(&mut &stream[..]).unwrap();
        assert_eq!(back, hello);
        assert!(back.check_compatible(&hello).is_ok());
    }

    #[test]
    fn major_is_strict_minor_is_additive() {
        let ours = WireHello::current(6);
        let alien = WireHello {
            major: WIRE_MAJOR + 1,
            ..ours.clone()
        };
        assert!(matches!(
            alien.check_compatible(&ours),
            Err(WireError::Incompatible(_))
        ));
        let future_minor = WireHello {
            minor: WIRE_MINOR + 9,
            ..ours.clone()
        };
        assert!(future_minor.check_compatible(&ours).is_ok());
    }

    #[test]
    fn newer_spec_schema_is_rejected_older_and_wildcard_pass() {
        let ours = WireHello::current(6);
        let newer = WireHello {
            spec_version: 7,
            ..ours.clone()
        };
        assert!(matches!(
            newer.check_compatible(&ours),
            Err(WireError::Incompatible(_))
        ));
        let older = WireHello {
            spec_version: 5,
            ..ours.clone()
        };
        assert!(older.check_compatible(&ours).is_ok());
        let unpinned = WireHello {
            spec_version: SPEC_VERSION_ANY,
            ..ours.clone()
        };
        assert!(unpinned.check_compatible(&ours).is_ok());
        assert!(ours.check_compatible(&unpinned).is_ok());
        // The rule is shared with the campaign's JSON hello.
        assert!(check_spec_version(6, 6).is_ok());
        assert!(check_spec_version(6, 9).is_err());
        assert!(check_spec_version(9, 6).is_ok());
    }

    #[test]
    fn assignment_rides_the_hello_additively() {
        // A minor-0 hello (no assignment bytes) and a minor-1 hello with
        // `assignment: None` are the same frame: old and new builds
        // interoperate as long as no assignment is sent.
        let bare = WireHello::current(6);
        let bytes = crate::codec::encode_to_vec(&bare);
        let mut minor0 = Vec::new();
        WIRE_MAGIC.iter().for_each(|b| minor0.push(*b));
        WIRE_MAJOR.encode(&mut minor0);
        WIRE_MINOR.encode(&mut minor0);
        6u32.encode(&mut minor0);
        assert_eq!(bytes, minor0, "None must add zero bytes");
        let decoded: WireHello = crate::codec::decode_from_slice(&minor0).unwrap();
        assert_eq!(decoded.assignment, None);

        // A full assignment round-trips through frames.
        let assigned = WireHello::with_assignment(
            6,
            ShardAssignment {
                start: 64,
                end: 128,
                n: 256,
                seed: 0xFEED_BEEF,
                pristine: true,
                crashed: vec![65, 90],
                payload: b"{\"spec\":1}".to_vec(),
            },
        );
        let mut stream = Vec::new();
        send_hello(&mut stream, &assigned).unwrap();
        let back = recv_hello(&mut &stream[..]).unwrap();
        assert_eq!(back, assigned);
        assert!(back.check_compatible(&WireHello::current(6)).is_ok());
    }

    #[test]
    fn wrong_magic_is_corrupt_not_a_panic() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"{\"hello\":{}}").unwrap();
        assert!(matches!(
            recv_hello(&mut &stream[..]),
            Err(WireError::Corrupt(_))
        ));
    }
}
