//! # netsim-wire
//!
//! The shared wire layer of the simulator: a canonical **binary** codec,
//! length-prefixed **checksummed frames**, a **versioned handshake**, and
//! an in-memory **duplex pipe** for hermetic (thread-based) transports.
//!
//! Two subsystems speak this layer:
//!
//! * the **distributed engine** (`netsim-runtime::distributed`): shard
//!   workers exchange per-round envelope arenas and final
//!   [`RunMetrics`](../netsim_runtime/metrics/struct.RunMetrics.html)
//!   with the coordinator.  Engine rates rule out per-message JSON —
//!   framing overhead would dominate, exactly as in constrained-bandwidth
//!   interactive-traffic systems — hence the binary codec;
//! * the **campaign service** (`byzcount-campaign`): its line-delimited
//!   JSON hello predates this crate; the version-rule helpers here
//!   ([`handshake::check_spec_version`]) are the shared formulation both
//!   protocols apply.
//!
//! ## Design
//!
//! * [`frame`] reuses the campaign WAL's frame discipline —
//!   `[u32 LE length][u32 LE FNV-1a checksum][payload]` — so torn or
//!   corrupted frames are detected before a single payload byte is
//!   interpreted.
//! * [`codec`] is a deliberately small, explicit binary encoding: every
//!   integer little-endian, every sequence `u32`-length-prefixed, no
//!   self-description.  Both sides must agree on the schema, which is
//!   what the handshake's `spec_version` pins.
//! * [`handshake`] carries `(major, minor, spec_version)`: major strict,
//!   minor additive, and a peer speaking a *newer* payload schema is
//!   rejected up front instead of failing mid-stream with a parse error.
//! * [`pipe`] is a blocking in-memory byte duplex implementing
//!   `Read`/`Write`, so shard workers can run as threads speaking the
//!   exact production codec with no sockets involved — the hermetic mode
//!   the differential suites and CI use.
//! * [`net`] is the Unix/TCP socket transport (one `unix:<path>` /
//!   `host:port` address grammar behind [`Listener`] / [`IoStream`],
//!   shared with the campaign service, which re-exports it).  TCP
//!   streams get `TCP_NODELAY` on connect *and* accept, and
//!   [`IoStream::exchange_hello`] bounds the handshake with a read
//!   deadline so a mute peer cannot hang an accept loop.
//!
//! Decoding **never panics** on malformed input: truncated, bit-flipped
//! and over-length frames all surface as [`WireError`] values (the
//! property fuzz suite in `tests/property_based.rs` feeds this layer
//! arbitrary bytes).

pub mod codec;
pub mod frame;
pub mod handshake;
pub mod net;
pub mod pipe;

pub use codec::{decode_from_slice, encode_to_vec, Reader, Wire, MAX_SEQ_LEN};
pub use frame::{checksum32, read_frame, read_frame_opt, write_frame, MAX_FRAME_BYTES};
pub use handshake::{
    check_spec_version, recv_hello, send_hello, ShardAssignment, WireHello, SPEC_VERSION_ANY,
    WIRE_MAJOR, WIRE_MINOR,
};
pub use net::{IoStream, Listener};
pub use pipe::{duplex, PipeEnd};

/// Errors of the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// A frame or payload failed validation (bad checksum, truncated or
    /// trailing bytes, over-length prefix, unknown tag, …).
    Corrupt(String),
    /// The peer's handshake is incompatible (major or spec mismatch).
    Incompatible(String),
    /// A read timed out partway through a frame.  Unlike [`WireError::Io`]
    /// this is unrecoverable: part of the frame was consumed, so the
    /// stream can never be re-synchronized — callers must not retry.
    Desync(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Corrupt(msg) => write!(f, "corrupt wire data: {msg}"),
            WireError::Incompatible(msg) => write!(f, "incompatible peer: {msg}"),
            WireError::Desync(msg) => write!(f, "wire stream desynchronized: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}
