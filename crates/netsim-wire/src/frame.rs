//! Length-prefixed, checksummed frames.
//!
//! The exact frame discipline of the campaign WAL, promoted to the wire:
//!
//! ```text
//! [u32 LE payload length][u32 LE FNV-1a checksum][payload bytes]
//! ```
//!
//! The length is validated against [`MAX_FRAME_BYTES`] *before* any
//! buffer is grown, and the checksum is verified before a single payload
//! byte is handed to the codec — so a torn, truncated or bit-flipped
//! frame is one clean [`WireError::Corrupt`], never a panic, never an
//! attacker-sized allocation, and never a half-interpreted message.

use crate::WireError;
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (the WAL's own cap).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Granularity of payload reads: the buffer grows at most this much ahead
/// of the bytes actually received, so a lying length header costs bounded
/// memory instead of a full up-front `MAX_FRAME_BYTES` allocation.
pub const READ_CHUNK_BYTES: usize = 1024 * 1024;

/// A read timeout (`SO_RCVTIMEO` surfaces as either kind, per platform).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// FNV-1a over the payload — cheap, deterministic, and identical to the
/// WAL's record checksum, so both persistence and transport share one
/// corruption detector.
pub fn checksum32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Write one frame (length, checksum, payload) and flush it.
///
/// Header and payload are coalesced into a single `write_all`: the
/// request/response cadence of the coordinator protocol means every frame
/// is immediately waited on, and separate small writes over TCP invite
/// Nagle + delayed-ACK stalls (40 ms per exchange) even with
/// `TCP_NODELAY` unset on one side.  One write, one segment.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Corrupt(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload into `buf` (cleared first, capacity kept).
///
/// EOF before the first header byte is an error here; use
/// [`read_frame_opt`] where a clean hang-up is an expected outcome.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<(), WireError> {
    match read_frame_opt(r, buf)? {
        true => Ok(()),
        false => Err(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer closed the stream mid-conversation",
        ))),
    }
}

/// [`read_frame`] that reports a clean EOF at a frame boundary as
/// `Ok(false)` instead of an error.  EOF *inside* a frame is always
/// corruption (a torn frame).
/// A read timeout while any part of a frame has already been consumed is
/// unrecoverable — the stream position is inside the frame and no retry
/// can re-synchronize it.  Timeouts *between* frames (no bytes consumed)
/// stay plain retryable [`WireError::Io`]: the handshake deadline relies
/// on exactly that distinction.
pub fn read_frame_opt<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<bool, WireError> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Corrupt(format!(
                    "torn frame header: {filled} of 8 bytes"
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) && filled > 0 => {
                return Err(WireError::Desync(format!(
                    "read timed out mid-frame ({filled} of 8 header bytes consumed)"
                )));
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("sized")) as usize;
    let expected = u32::from_le_bytes(header[4..8].try_into().expect("sized"));
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    buf.clear();
    let mut got = 0;
    while got < len {
        let want = (len - got).min(READ_CHUNK_BYTES);
        if buf.len() < got + want {
            buf.resize(got + want, 0);
        }
        match r.read(&mut buf[got..got + want]) {
            Ok(0) => {
                return Err(WireError::Corrupt(format!(
                    "torn frame: payload short of {len} bytes"
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(WireError::Desync(format!(
                    "read timed out mid-frame ({got} of {len} payload bytes consumed)"
                )));
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    debug_assert_eq!(buf.len(), len);
    let actual = checksum32(buf);
    if actual != expected {
        return Err(WireError::Corrupt(format!(
            "frame checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[0xAB; 1000]).unwrap();
        let mut cursor = &stream[..];
        let mut buf = Vec::new();
        read_frame(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, b"first");
        read_frame(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, b"");
        read_frame(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, vec![0xAB; 1000]);
        assert!(!read_frame_opt(&mut cursor, &mut buf).unwrap());
    }

    #[test]
    fn torn_and_flipped_frames_are_corrupt() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"payload").unwrap();
        // Torn header.
        let mut short = &stream[..5];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame_opt(&mut short, &mut buf),
            Err(WireError::Corrupt(_))
        ));
        // Torn payload.
        let mut short = &stream[..stream.len() - 2];
        assert!(matches!(
            read_frame_opt(&mut short, &mut buf),
            Err(WireError::Corrupt(_))
        ));
        // Flipped payload bit.
        let mut flipped = stream.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            read_frame_opt(&mut &flipped[..], &mut buf),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn over_length_frames_are_rejected_before_allocation() {
        let mut header = Vec::new();
        header.extend_from_slice(&(u32::MAX).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame_opt(&mut &header[..], &mut buf),
            Err(WireError::Corrupt(_))
        ));
        assert!(write_frame(&mut Vec::new(), &vec![0; MAX_FRAME_BYTES + 1]).is_err());
    }

    #[test]
    fn checksum_matches_the_wal_discipline() {
        // FNV-1a 32-bit reference vectors.
        assert_eq!(checksum32(b""), 0x811c_9dc5);
        assert_eq!(checksum32(b"a"), 0xe40c_292c);
        assert_eq!(checksum32(b"foobar"), 0xbf9c_f968);
    }

    /// Injects `Err(Interrupted)` before every successful read, the way a
    /// signal-heavy host delivers EINTR on a socket.
    struct Interrupting<R> {
        inner: R,
        pending_eintr: bool,
    }

    impl<R: Read> Read for Interrupting<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending_eintr {
                self.pending_eintr = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.pending_eintr = true;
            // One byte at a time, so the header and payload loops both see
            // many interruptions per frame.
            let n = buf.len().min(1);
            self.inner.read(&mut buf[..n])
        }
    }

    #[test]
    fn interrupted_reads_are_retried_not_fatal() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"survives EINTR").unwrap();
        let mut reader = Interrupting {
            inner: &stream[..],
            pending_eintr: true,
        };
        let mut buf = Vec::new();
        assert!(read_frame_opt(&mut reader, &mut buf).unwrap());
        assert_eq!(buf, b"survives EINTR");
    }

    /// Yields `data`, then an endless stream of timeout errors.
    struct TimingOut<'a> {
        data: &'a [u8],
        kind: io::ErrorKind,
    }

    impl Read for TimingOut<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.data.is_empty() {
                return Err(io::Error::new(self.kind, "timed out"));
            }
            let n = buf.len().min(self.data.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn timeout_mid_frame_is_a_fatal_desync_between_frames_it_is_retryable_io() {
        let mut frame = Vec::new();
        write_frame(&mut frame, b"half a frame").unwrap();
        let mut buf = Vec::new();
        for kind in [io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            // Timeout with zero bytes consumed: the stream is still at a
            // frame boundary, so this is a plain (retryable) I/O error.
            let mut idle = TimingOut { data: &[], kind };
            assert!(matches!(
                read_frame_opt(&mut idle, &mut buf),
                Err(WireError::Io(_))
            ));
            // Timeout after part of the header: unrecoverable.
            let mut torn_header = TimingOut {
                data: &frame[..3],
                kind,
            };
            assert!(matches!(
                read_frame_opt(&mut torn_header, &mut buf),
                Err(WireError::Desync(_))
            ));
            // Timeout inside the payload: unrecoverable.
            let mut torn_payload = TimingOut {
                data: &frame[..frame.len() - 4],
                kind,
            };
            assert!(matches!(
                read_frame_opt(&mut torn_payload, &mut buf),
                Err(WireError::Desync(_))
            ));
        }
    }

    #[test]
    fn lying_length_header_costs_bounded_memory() {
        // A peer claims a 32 MiB payload but sends only a handful of
        // bytes.  The buffer must grow with the bytes that actually
        // arrive (chunk granularity), not with the claimed length.
        let claimed: u32 = 32 * 1024 * 1024;
        let mut stream = Vec::new();
        stream.extend_from_slice(&claimed.to_le_bytes());
        stream.extend_from_slice(&0u32.to_le_bytes());
        stream.extend_from_slice(&[0xEE; 100]);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame_opt(&mut &stream[..], &mut buf),
            Err(WireError::Corrupt(_))
        ));
        assert!(
            buf.capacity() <= 2 * READ_CHUNK_BYTES,
            "allocated {} bytes for a frame that delivered 100",
            buf.capacity()
        );
    }

    /// Counts `write` calls; each one would be a separate TCP segment.
    struct CountingWriter {
        sink: Vec<u8>,
        writes: usize,
    }

    impl Write for CountingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.writes += 1;
            self.sink.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn a_frame_is_one_coalesced_write() {
        let mut w = CountingWriter {
            sink: Vec::new(),
            writes: 0,
        };
        write_frame(&mut w, b"one segment please").unwrap();
        assert_eq!(w.writes, 1, "header and payload must leave in one write");
        let mut buf = Vec::new();
        read_frame(&mut &w.sink[..], &mut buf).unwrap();
        assert_eq!(buf, b"one segment please");
    }
}
