//! Length-prefixed, checksummed frames.
//!
//! The exact frame discipline of the campaign WAL, promoted to the wire:
//!
//! ```text
//! [u32 LE payload length][u32 LE FNV-1a checksum][payload bytes]
//! ```
//!
//! The length is validated against [`MAX_FRAME_BYTES`] *before* any
//! buffer is grown, and the checksum is verified before a single payload
//! byte is handed to the codec — so a torn, truncated or bit-flipped
//! frame is one clean [`WireError::Corrupt`], never a panic, never an
//! attacker-sized allocation, and never a half-interpreted message.

use crate::WireError;
use std::io::{Read, Write};

/// Upper bound on one frame's payload (the WAL's own cap).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// FNV-1a over the payload — cheap, deterministic, and identical to the
/// WAL's record checksum, so both persistence and transport share one
/// corruption detector.
pub fn checksum32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Write one frame (length, checksum, payload) and flush it.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Corrupt(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&checksum32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload into `buf` (cleared first, capacity kept).
///
/// EOF before the first header byte is an error here; use
/// [`read_frame_opt`] where a clean hang-up is an expected outcome.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<(), WireError> {
    match read_frame_opt(r, buf)? {
        true => Ok(()),
        false => Err(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer closed the stream mid-conversation",
        ))),
    }
}

/// [`read_frame`] that reports a clean EOF at a frame boundary as
/// `Ok(false)` instead of an error.  EOF *inside* a frame is always
/// corruption (a torn frame).
pub fn read_frame_opt<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<bool, WireError> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(WireError::Corrupt(format!(
                "torn frame header: {filled} of 8 bytes"
            )));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("sized")) as usize;
    let expected = u32::from_le_bytes(header[4..8].try_into().expect("sized"));
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Corrupt(format!("torn frame: payload short of {len} bytes"))
        } else {
            WireError::Io(e)
        }
    })?;
    let actual = checksum32(buf);
    if actual != expected {
        return Err(WireError::Corrupt(format!(
            "frame checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[0xAB; 1000]).unwrap();
        let mut cursor = &stream[..];
        let mut buf = Vec::new();
        read_frame(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, b"first");
        read_frame(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, b"");
        read_frame(&mut cursor, &mut buf).unwrap();
        assert_eq!(buf, vec![0xAB; 1000]);
        assert!(!read_frame_opt(&mut cursor, &mut buf).unwrap());
    }

    #[test]
    fn torn_and_flipped_frames_are_corrupt() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"payload").unwrap();
        // Torn header.
        let mut short = &stream[..5];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame_opt(&mut short, &mut buf),
            Err(WireError::Corrupt(_))
        ));
        // Torn payload.
        let mut short = &stream[..stream.len() - 2];
        assert!(matches!(
            read_frame_opt(&mut short, &mut buf),
            Err(WireError::Corrupt(_))
        ));
        // Flipped payload bit.
        let mut flipped = stream.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            read_frame_opt(&mut &flipped[..], &mut buf),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn over_length_frames_are_rejected_before_allocation() {
        let mut header = Vec::new();
        header.extend_from_slice(&(u32::MAX).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame_opt(&mut &header[..], &mut buf),
            Err(WireError::Corrupt(_))
        ));
        assert!(write_frame(&mut Vec::new(), &vec![0; MAX_FRAME_BYTES + 1]).is_err());
    }

    #[test]
    fn checksum_matches_the_wal_discipline() {
        // FNV-1a 32-bit reference vectors.
        assert_eq!(checksum32(b""), 0x811c_9dc5);
        assert_eq!(checksum32(b"a"), 0xe40c_292c);
        assert_eq!(checksum32(b"foobar"), 0xbf9c_f968);
    }
}
