//! A blocking in-memory byte duplex.
//!
//! [`duplex`] returns two connected [`PipeEnd`]s; bytes written to one
//! are read from the other, in order.  Both ends implement
//! `Read`/`Write` and are `Send`, so a coordinator and a worker thread
//! can speak the *exact* production frame/codec stack with no sockets —
//! the hermetic transport the distributed engine's tests and CI run on.
//!
//! Semantics:
//!
//! * writes never block (the buffer grows as needed);
//! * reads block until at least one byte is available or the peer end
//!   has dropped (then EOF after the buffer drains);
//! * writing after the peer dropped fails with `BrokenPipe` — a dead
//!   worker surfaces as a loud error, never a silent hang.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

struct ChannelState {
    buf: VecDeque<u8>,
    /// The end that would feed (or drain) this channel has dropped.
    closed: bool,
}

struct Channel {
    state: Mutex<ChannelState>,
    readable: Condvar,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Channel {
            state: Mutex::new(ChannelState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.readable.notify_all();
    }
}

/// One end of an in-memory duplex byte stream.
pub struct PipeEnd {
    incoming: Arc<Channel>,
    outgoing: Arc<Channel>,
}

/// Create a connected pair of pipe ends.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a_to_b = Channel::new();
    let b_to_a = Channel::new();
    (
        PipeEnd {
            incoming: Arc::clone(&b_to_a),
            outgoing: Arc::clone(&a_to_b),
        },
        PipeEnd {
            incoming: a_to_b,
            outgoing: b_to_a,
        },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.incoming.state.lock().expect("pipe lock");
        while state.buf.is_empty() {
            if state.closed {
                return Ok(0); // clean EOF: peer gone, buffer drained
            }
            state = self.incoming.readable.wait(state).expect("pipe lock");
        }
        let n = buf.len().min(state.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("length checked");
        }
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.outgoing.state.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer end of the pipe has dropped",
            ));
        }
        state.buf.extend(buf.iter().copied());
        self.outgoing.readable.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        // Readers of our outgoing channel see EOF once drained; writers
        // into our incoming channel get BrokenPipe.
        self.outgoing.close();
        self.incoming.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_in_order_both_ways() {
        let (mut a, mut b) = duplex();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn drop_gives_eof_after_drain_and_broken_pipe_on_write() {
        let (mut a, mut b) = duplex();
        a.write_all(b"tail").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"tail");
        assert_eq!(b.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn blocking_read_wakes_on_cross_thread_write() {
        let (mut a, mut b) = duplex();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        a.write_all(b"hello").unwrap();
        assert_eq!(&handle.join().unwrap(), b"hello");
    }

    #[test]
    fn frames_flow_over_the_pipe() {
        let (mut a, mut b) = duplex();
        crate::frame::write_frame(&mut a, b"framed payload").unwrap();
        let mut buf = Vec::new();
        crate::frame::read_frame(&mut b, &mut buf).unwrap();
        assert_eq!(buf, b"framed payload");
        drop(a);
        assert!(!crate::frame::read_frame_opt(&mut b, &mut buf).unwrap());
    }
}
