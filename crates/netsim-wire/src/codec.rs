//! The canonical binary codec.
//!
//! Encoding rules, in full:
//!
//! * integers are **little-endian**, fixed width;
//! * `bool` is one byte, `0` or `1` (anything else is corrupt);
//! * `f64` is its IEEE-754 bit pattern as a little-endian `u64`;
//! * `String` and `Vec<T>` are a `u32` element count followed by the
//!   elements (strings count *bytes* and must be valid UTF-8);
//! * `Option<T>` is a presence byte (`0`/`1`) followed by the value;
//! * enums are a `u8` tag followed by the variant's fields, in order.
//!
//! There is no self-description and no padding: both peers must agree on
//! the schema (the handshake's `spec_version` pins that agreement).
//! Decoding is total — every malformed input is a clean
//! [`WireError::Corrupt`], never a panic and never an unbounded
//! allocation (sequence counts are capped at [`MAX_SEQ_LEN`] and checked
//! against the bytes actually present before any buffer is reserved).

use crate::WireError;

/// Upper bound on any encoded sequence's element count.  Generous for
/// engine traffic (a shard's per-round arena is bounded by the edge
/// count), small enough that a bit-flipped length prefix cannot demand a
/// pathological allocation or a multi-second decode loop.
pub const MAX_SEQ_LEN: u32 = 1 << 24;

/// A bounds-checked cursor over an encoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Corrupt(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Assert every byte was consumed (trailing garbage is corruption:
    /// it means the peer encoded under a different schema).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Read a `u32` sequence-length prefix, validated against
    /// [`MAX_SEQ_LEN`] — callers then decode exactly that many elements,
    /// so a lying prefix dies on truncation, not allocation.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let len = u32::decode(self)?;
        if len > MAX_SEQ_LEN {
            return Err(WireError::Corrupt(format!(
                "sequence length {len} exceeds the {MAX_SEQ_LEN} cap"
            )));
        }
        Ok(len as usize)
    }
}

/// A type with a canonical binary encoding.
///
/// `encode` appends to the output buffer (so batches build up one
/// allocation); `decode` consumes from a [`Reader`] and must leave the
/// cursor exactly past this value's bytes.
pub trait Wire: Sized {
    /// Append this value's canonical encoding.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value, advancing the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encode one value into a fresh buffer.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decode one value from a complete payload, rejecting trailing bytes.
pub fn decode_from_slice<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(buf);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

macro_rules! int_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("size checked")))
            }
        }
    )*};
}

int_wire!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Corrupt(format!("bad bool byte {other}"))),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt("string is not valid UTF-8".into()))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        debug_assert!(self.len() <= MAX_SEQ_LEN as usize, "sequence too long");
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        // Reserve no more than the bytes present can justify: a lying
        // prefix may still overstate the count, but it can no longer
        // demand memory the payload does not carry.
        let mut out = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(WireError::Corrupt(format!("bad option byte {other}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).expect("round trip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(String::from("héllo"));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((3u32, vec![false, true]));
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let nan_bits = 0x7FF8_0000_0000_0001u64;
        let bytes = encode_to_vec(&f64::from_bits(nan_bits));
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.to_bits(), nan_bits, "codec must not canonicalize NaN");
    }

    #[test]
    fn truncation_and_trailing_bytes_are_corrupt() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        assert!(decode_from_slice::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_from_slice::<Vec<u64>>(&longer).is_err());
    }

    #[test]
    fn lying_length_prefix_is_rejected_without_allocating() {
        // A count beyond the cap is rejected outright …
        let bytes = encode_to_vec(&(MAX_SEQ_LEN + 1));
        assert!(matches!(
            decode_from_slice::<Vec<u8>>(&bytes),
            Err(WireError::Corrupt(_))
        ));
        // … and a large-but-legal count over a short payload dies on
        // truncation, not on reservation.
        let bytes = encode_to_vec(&(MAX_SEQ_LEN - 1));
        assert!(matches!(
            decode_from_slice::<Vec<u64>>(&bytes),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_tag_bytes_are_corrupt() {
        assert!(decode_from_slice::<bool>(&[2]).is_err());
        assert!(decode_from_slice::<Option<u8>>(&[9, 1]).is_err());
        let bytes = [1u8, 0, 0, 0, 0xFF]; // one "string byte" that is not UTF-8
        assert!(decode_from_slice::<String>(&bytes).is_err());
    }
}
