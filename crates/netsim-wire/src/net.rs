//! Socket transport: one address grammar, two socket families.
//!
//! Addresses starting with `unix:` name a Unix-domain socket path
//! (`unix:/tmp/byzcount.sock`); anything else is a TCP `host:port`
//! (`127.0.0.1:7171`, with port `0` for an ephemeral port).  Both the
//! campaign's line-delimited JSON protocol and the distributed engine's
//! binary frames are stream-oriented, so the two families are
//! interchangeable behind [`Listener`] / [`IoStream`].
//!
//! This module grew up in `byzcount-campaign` and moved here when shard
//! workers became separate processes; the campaign re-exports it.  Two
//! behaviours matter for the frame-per-exchange coordinator protocol:
//!
//! * **`TCP_NODELAY` is set on connect and accept.**  Every frame is
//!   immediately waited on by the peer, so Nagle buffering only adds
//!   stalls (up to 40 ms per exchange against delayed ACKs) — there is
//!   never a follow-up write to coalesce with.
//! * **[`IoStream::exchange_hello`] bounds the handshake.**  A peer that
//!   connects and sends nothing would otherwise hang a blocking accept
//!   loop (or a dialing coordinator) forever; the deadline applies to
//!   the handshake only and is cleared once the hello verifies.

use crate::handshake::{recv_hello, send_hello, WireHello};
use crate::WireError;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

/// A bound server socket of either family.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain socket.
    Unix(UnixListener),
    /// TCP socket.
    Tcp(TcpListener),
}

/// An accepted or dialed connection of either family.
#[derive(Debug)]
pub enum IoStream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Listener {
    /// Bind `addr` (`unix:<path>` or `<host>:<port>`).
    ///
    /// A *stale* socket file at a Unix path — left behind by a killed
    /// server, exactly the resume scenario — is removed first.  Staleness
    /// is probed by connecting: if something answers, another server owns
    /// the path and binding fails loudly instead of silently unlinking a
    /// live server's socket out from under it (its clients would hang and
    /// two servers would believe they own the same store).
    pub fn bind(addr: &str) -> io::Result<Self> {
        if let Some(path) = addr.strip_prefix("unix:") {
            if Path::new(path).exists() {
                if UnixStream::connect(path).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!(
                            "{addr}: socket is in use by a live server \
                             (refusing to unlink it)"
                        ),
                    ));
                }
                // Nothing is accepting: a stale leftover; reclaim it.
                std::fs::remove_file(path)?;
            }
            Ok(Listener::Unix(UnixListener::bind(path)?))
        } else {
            Ok(Listener::Tcp(TcpListener::bind(addr)?))
        }
    }

    /// The bound address in the same grammar [`bind`](Listener::bind)
    /// accepts — for TCP this resolves port `0` to the real port.
    pub fn local_addr(&self) -> io::Result<String> {
        match self {
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(format!("unix:{}", path.display()))
            }
            Listener::Tcp(l) => Ok(l.local_addr()?.to_string()),
        }
    }

    /// Switch the accept loop between blocking and polling mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accept one connection (respects the nonblocking mode: callers see
    /// `WouldBlock` as `Ok(None)`).  TCP connections come back with
    /// `TCP_NODELAY` already set.
    pub fn accept(&self) -> io::Result<Option<IoStream>> {
        let result = match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| IoStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| IoStream::Tcp(s)),
        };
        match result {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl IoStream {
    /// Dial `addr` (same grammar as [`Listener::bind`]).  TCP streams
    /// come back with `TCP_NODELAY` already set.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = if let Some(path) = addr.strip_prefix("unix:") {
            IoStream::Unix(UnixStream::connect(path)?)
        } else {
            IoStream::Tcp(TcpStream::connect(addr)?)
        };
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Disable (or re-enable) Nagle buffering.  A no-op for Unix-domain
    /// streams, which have no such coalescing.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        match self {
            IoStream::Unix(_) => Ok(()),
            IoStream::Tcp(s) => s.set_nodelay(nodelay),
        }
    }

    /// A second handle on the same connection (reader/writer split).
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(match self {
            IoStream::Unix(s) => IoStream::Unix(s.try_clone()?),
            IoStream::Tcp(s) => IoStream::Tcp(s.try_clone()?),
        })
    }

    /// Cap how long a blocking read may stall.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            IoStream::Unix(s) => s.set_read_timeout(timeout),
            IoStream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Exchange hellos under a read deadline that applies to the
    /// handshake *only*: send ours, receive and verify the peer's, then
    /// clear the deadline.  A mute peer surfaces as a timeout error
    /// within `deadline` instead of hanging the accept loop (or a
    /// dialing coordinator) forever.
    pub fn exchange_hello(
        &mut self,
        ours: &WireHello,
        deadline: Duration,
    ) -> Result<WireHello, WireError> {
        self.set_read_timeout(Some(deadline))?;
        send_hello(self, ours)?;
        let theirs = recv_hello(self)?;
        theirs.check_compatible(ours)?;
        self.set_read_timeout(None)?;
        Ok(theirs)
    }
}

impl Read for IoStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            IoStream::Unix(s) => s.read(buf),
            IoStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for IoStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            IoStream::Unix(s) => s.write(buf),
            IoStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            IoStream::Unix(s) => s.flush(),
            IoStream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};
    use std::time::Instant;

    fn tmp_sock(tag: &str) -> String {
        format!(
            "unix:{}",
            std::env::temp_dir()
                .join(format!("nsw-net-{tag}-{}.sock", std::process::id()))
                .display()
        )
    }

    #[test]
    fn frames_flow_over_both_families() {
        for addr in [tmp_sock("families"), "127.0.0.1:0".to_string()] {
            let listener = Listener::bind(&addr).unwrap();
            let bound = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || {
                let mut stream = listener.accept().unwrap().expect("blocking accept");
                let mut buf = Vec::new();
                read_frame(&mut stream, &mut buf).unwrap();
                write_frame(&mut stream, &buf).unwrap();
            });
            let mut client = IoStream::connect(&bound).unwrap();
            write_frame(&mut client, b"over the socket").unwrap();
            let mut buf = Vec::new();
            read_frame(&mut client, &mut buf).unwrap();
            assert_eq!(buf, b"over the socket");
            server.join().unwrap();
            if let Some(path) = bound.strip_prefix("unix:") {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    #[test]
    fn mute_peer_times_out_during_the_handshake() {
        // Regression: `recv_hello` had no deadline, so a peer that
        // connects and sends nothing hung the accept loop forever.
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let bound = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut stream = listener.accept().unwrap().expect("blocking accept");
            let started = Instant::now();
            let err = stream
                .exchange_hello(&WireHello::current(0), Duration::from_millis(200))
                .expect_err("mute peer must not complete a handshake");
            (started.elapsed(), err)
        });
        // The "client" connects and never says hello.
        let _mute = IoStream::connect(&bound).unwrap();
        let (elapsed, err) = server.join().unwrap();
        assert!(
            matches!(err, WireError::Io(_)),
            "a pre-hello timeout is retryable I/O, not desync: {err}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "handshake must give up within the deadline, took {elapsed:?}"
        );
    }

    #[test]
    fn handshake_deadline_is_cleared_after_the_hello() {
        let listener = Listener::bind(&tmp_sock("deadline")).unwrap();
        let bound = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut stream = listener.accept().unwrap().expect("blocking accept");
            stream
                .exchange_hello(&WireHello::current(0), Duration::from_millis(200))
                .unwrap();
            // Post-handshake reads must block past the handshake
            // deadline: the peer legitimately thinks between frames.
            let mut buf = Vec::new();
            read_frame(&mut stream, &mut buf).unwrap();
            buf
        });
        let mut client = IoStream::connect(&bound).unwrap();
        client
            .exchange_hello(&WireHello::current(0), Duration::from_millis(200))
            .unwrap();
        std::thread::sleep(Duration::from_millis(400));
        write_frame(&mut client, b"late but fine").unwrap();
        assert_eq!(server.join().unwrap(), b"late but fine");
        if let Some(path) = bound.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn tcp_loopback_round_trips_are_not_nagle_stalled() {
        // Regression for the Nagle + delayed-ACK interaction: with the
        // old three-write `write_frame` and no `TCP_NODELAY`, a
        // request/response exchange could stall ~40 ms, making 200
        // round trips take ~8 s.  Coalesced single-write frames with
        // nodelay finish orders of magnitude faster; the bound is kept
        // generous for slow CI machines.
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let bound = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut stream = listener.accept().unwrap().expect("blocking accept");
            let mut buf = Vec::new();
            while crate::frame::read_frame_opt(&mut stream, &mut buf).unwrap() {
                write_frame(&mut stream, &buf).unwrap();
            }
        });
        let mut client = IoStream::connect(&bound).unwrap();
        let mut buf = Vec::new();
        let started = Instant::now();
        const TRIPS: u32 = 200;
        for i in 0..TRIPS {
            write_frame(&mut client, &i.to_le_bytes()).unwrap();
            read_frame(&mut client, &mut buf).unwrap();
            assert_eq!(buf, i.to_le_bytes());
        }
        let elapsed = started.elapsed();
        drop(client);
        server.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(4),
            "{TRIPS} loopback round trips took {elapsed:?} (Nagle stall?)"
        );
    }

    #[test]
    fn live_unix_socket_is_refused_stale_is_reclaimed() {
        let addr = tmp_sock("stale");
        let path = addr.strip_prefix("unix:").unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        let first = Listener::bind(&addr).unwrap();
        let err = Listener::bind(&addr).expect_err("live socket must be refused");
        assert!(err.to_string().contains("in use"), "{err}");
        drop(first);
        // The file outlives the listener; nobody accepts: stale, reclaim.
        assert!(Path::new(&path).exists());
        let _second = Listener::bind(&addr).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
