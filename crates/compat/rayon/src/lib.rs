//! Offline subset of the `rayon` parallel-iterator API.
//!
//! The workspace builds without crates.io access, so this shim provides the
//! slice of rayon it actually uses: `into_par_iter()` on ranges and vectors,
//! `par_iter()` / `par_iter_mut()` on slices, the adapter chain
//! (`map`/`filter`/`enumerate`/`zip`) and the usual consumers
//! (`collect`/`sum`/`count`/`max`/`min`/`for_each`), plus [`join`].
//!
//! # Execution model
//!
//! Parallelism is implemented with `std::thread::scope`: an iterator chain
//! is recursively split in half and the halves run on scoped threads, with
//! results concatenated **in order** — so any `collect()` is byte-identical
//! to the sequential result and determinism is preserved no matter how the
//! OS schedules threads.
//!
//! Splitting is *coarse-grained by design*: owned sources (ranges, vectors)
//! split down to [`MIN_SPLIT`] items, which parallelises the workspace's
//! outer trial/batch loops where each item is an entire simulation run.
//! Borrowed slice sources (`par_iter_mut`, used inside the engine's
//! per-round node loop) intentionally do **not** split: the per-item work
//! there is microseconds, and spawning scoped threads every round costs more
//! than it buys without a persistent work-stealing pool.  The rayon API
//! shape is kept so the code reads identically and a real rayon can be
//! swapped back in when the registry is reachable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Smallest number of items worth moving to another thread.
pub const MIN_SPLIT: usize = 2;

/// Programmatic worker-count override (0 = none); see
/// [`set_num_threads_override`].
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker count programmatically (shim extension, not part of
/// real rayon's API).  `Some(n)` pins it, `None` restores the default
/// `RAYON_NUM_THREADS` / available-parallelism lookup.
///
/// This exists so tests can vary the worker count without
/// `std::env::set_var`, which races against concurrent `getenv` calls from
/// other test threads (undefined behaviour on glibc).  The override is
/// process-global but data-race-free; since determinism never depends on
/// the worker count, a concurrently running test observing it is harmless.
pub fn set_num_threads_override(n: Option<usize>) {
    NUM_THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Number of worker threads to fan out to.
pub fn current_num_threads() -> usize {
    let overridden = NUM_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if overridden >= 1 {
        return overridden;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (ha.join().expect("rayon-shim worker panicked"), rb)
    })
}

/// A parallel iterator: a splittable, sequentially-evaluable pipeline.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Exact number of items this pipeline will yield (upper bound for
    /// filtered pipelines, which refuse to split).
    fn bound(&self) -> usize;

    /// Try to split into a prefix of `at` items and the remainder.
    /// `Err(self)` when this pipeline cannot split (filtered or borrowed).
    fn try_split(self, at: usize) -> Result<(Self, Self), Self>;

    /// Evaluate sequentially, preserving order.
    fn seq(self) -> Vec<Self::Item>;

    /// Transform every item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Keep items satisfying the predicate (disables further splitting).
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Attach indices `0..len`.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Pair items positionally with another parallel iterator.
    fn zip<J>(self, other: J) -> Zip<Self, J>
    where
        J: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Evaluate (in parallel where the pipeline allows) and collect.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_vec(drive(self))
    }

    /// Evaluate and discard results.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = drive(self.map(f));
    }

    /// Number of items produced.
    fn count(self) -> usize {
        drive(self).len()
    }

    /// Sum of all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        drive(self).into_iter().sum()
    }

    /// Maximum item.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self).into_iter().max()
    }

    /// Minimum item.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self).into_iter().min()
    }

    /// Left-to-right fold into an accumulator (sequential semantics).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        drive(self).into_iter().fold(identity(), op)
    }
}

/// Evaluate a pipeline, splitting across scoped threads where profitable.
fn drive<I: ParallelIterator>(iter: I) -> Vec<I::Item> {
    let threads = current_num_threads();
    if threads <= 1 {
        return iter.seq();
    }
    // Enough binary splits to occupy every thread.
    let depth = (usize::BITS - (threads - 1).leading_zeros()) as usize;
    drive_rec(iter, depth + 1)
}

fn drive_rec<I: ParallelIterator>(iter: I, splits_left: usize) -> Vec<I::Item> {
    let n = iter.bound();
    if splits_left == 0 || n < MIN_SPLIT.max(2) {
        return iter.seq();
    }
    match iter.try_split(n / 2) {
        Err(whole) => whole.seq(),
        Ok((left, right)) => {
            let (mut lv, rv) = join(
                move || drive_rec(left, splits_left - 1),
                move || drive_rec(right, splits_left - 1),
            );
            lv.extend(rv);
            lv
        }
    }
}

/// Conversion from an evaluated parallel pipeline.
pub trait FromParallelIterator<T> {
    /// Build the collection from items in pipeline order.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over an owned vector (splittable).
pub struct VecParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn bound(&self) -> usize {
        self.items.len()
    }
    fn try_split(mut self, at: usize) -> Result<(Self, Self), Self> {
        if at == 0 || at >= self.items.len() {
            return Err(self);
        }
        let tail = self.items.split_off(at);
        Ok((self, VecParIter { items: tail }))
    }
    fn seq(self) -> Vec<T> {
        self.items
    }
}

/// Parallel iterator over an integer range (splittable).
pub struct RangeParIter<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;
            fn bound(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }
            fn try_split(self, at: usize) -> Result<(Self, Self), Self> {
                let len = self.bound();
                if at == 0 || at >= len {
                    return Err(self);
                }
                let mid = self.start + at as $t;
                Ok((
                    RangeParIter { start: self.start, end: mid },
                    RangeParIter { start: mid, end: self.end },
                ))
            }
            fn seq(self) -> Vec<$t> {
                (self.start..self.end).collect()
            }
        }

        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> Self::Iter {
                RangeParIter { start: self.start, end: self.end }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

/// Parallel iterator over a shared slice (borrowed: evaluates sequentially).
pub struct SliceParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn bound(&self) -> usize {
        self.slice.len()
    }
    fn try_split(self, at: usize) -> Result<(Self, Self), Self> {
        if at == 0 || at >= self.slice.len() {
            return Err(self);
        }
        let (a, b) = self.slice.split_at(at);
        Ok((SliceParIter { slice: a }, SliceParIter { slice: b }))
    }
    fn seq(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// Parallel iterator over an exclusive slice (borrowed: evaluates
/// sequentially — see the module docs for why).
pub struct SliceMutParIter<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceMutParIter<'a, T> {
    type Item = &'a mut T;
    fn bound(&self) -> usize {
        self.slice.len()
    }
    fn try_split(self, _at: usize) -> Result<(Self, Self), Self> {
        // Engine-internal loops are deliberately kept on one thread.
        Err(self)
    }
    fn seq(self) -> Vec<&'a mut T> {
        self.slice.iter_mut().collect()
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Mapped pipeline.
pub struct Map<I, F: ?Sized> {
    base: I,
    f: Arc<F>,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send + ?Sized,
    R: Send,
{
    type Item = R;
    fn bound(&self) -> usize {
        self.base.bound()
    }
    fn try_split(self, at: usize) -> Result<(Self, Self), Self> {
        match self.base.try_split(at) {
            Ok((a, b)) => Ok((
                Map {
                    base: a,
                    f: Arc::clone(&self.f),
                },
                Map { base: b, f: self.f },
            )),
            Err(base) => Err(Map { base, f: self.f }),
        }
    }
    fn seq(self) -> Vec<R> {
        let f = self.f;
        self.base.seq().into_iter().map(|x| f(x)).collect()
    }
}

/// Filtered pipeline (never splits, keeping indices/lengths honest).
pub struct Filter<I, F: ?Sized> {
    base: I,
    f: Arc<F>,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync + Send + ?Sized,
{
    type Item = I::Item;
    fn bound(&self) -> usize {
        self.base.bound()
    }
    fn try_split(self, _at: usize) -> Result<(Self, Self), Self> {
        Err(self)
    }
    fn seq(self) -> Vec<I::Item> {
        let f = self.f;
        self.base.seq().into_iter().filter(|x| f(x)).collect()
    }
}

/// Enumerated pipeline.
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: ParallelIterator,
{
    type Item = (usize, I::Item);
    fn bound(&self) -> usize {
        self.base.bound()
    }
    fn try_split(self, at: usize) -> Result<(Self, Self), Self> {
        let offset = self.offset;
        match self.base.try_split(at) {
            Ok((a, b)) => Ok((
                Enumerate { base: a, offset },
                Enumerate {
                    base: b,
                    offset: offset + at,
                },
            )),
            Err(base) => Err(Enumerate { base, offset }),
        }
    }
    fn seq(self) -> Vec<(usize, I::Item)> {
        let offset = self.offset;
        self.base
            .seq()
            .into_iter()
            .enumerate()
            .map(|(i, x)| (offset + i, x))
            .collect()
    }
}

/// Positionally zipped pipelines (truncates to the shorter side).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn bound(&self) -> usize {
        self.a.bound().min(self.b.bound())
    }
    fn try_split(self, at: usize) -> Result<(Self, Self), Self> {
        if at == 0 || at >= self.bound() {
            return Err(self);
        }
        match self.a.try_split(at) {
            Ok((a1, a2)) => match self.b.try_split(at) {
                Ok((b1, b2)) => Ok((Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })),
                Err(_) => unreachable!("zip halves must split identically"),
            },
            Err(a) => Err(Zip { a, b: self.b }),
        }
    }
    fn seq(self) -> Vec<(A::Item, B::Item)> {
        let b = self.b.seq();
        self.a.seq().into_iter().zip(b).collect()
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// Owned conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter { items: self }
    }
}

/// `par_iter()` on shared collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

/// `par_iter_mut()` on exclusive collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceMutParIter<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        SliceMutParIter { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceMutParIter<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        SliceMutParIter { slice: self }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

pub mod iter {
    //! Namespace parity with rayon.
    pub use crate::{
        Enumerate, Filter, FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, Map, ParallelIterator, Zip,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_matches_sequential() {
        let par: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let seq: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn order_is_preserved_under_heavy_split() {
        let v: Vec<usize> = (0..10_000usize).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x + 1).collect();
        assert!(out.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(out[0], 1);
    }

    #[test]
    fn zip_enumerate_chain() {
        let mut a = vec![10u32, 20, 30];
        let mut b = vec![1u32, 2, 3];
        let out: Vec<(usize, u32)> = a
            .par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .map(|(i, (x, y))| (i, *x + *y))
            .collect();
        assert_eq!(out, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn filter_sum_count() {
        let sum: u64 = (0u64..100).into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(sum, (0..100).filter(|x| x % 2 == 0).sum::<u64>());
        let cnt = (0usize..57).into_par_iter().count();
        assert_eq!(cnt, 57);
        assert_eq!((0u32..9).into_par_iter().max(), Some(8));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn collect_into_result_short_circuits_errors() {
        let ok: Result<Vec<u32>, String> = (0u32..10).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<u32>, String> = (0u32..10)
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }
}
