//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment for this workspace has no crates.io access, so the
//! pieces of `rand` 0.8 the workspace actually uses are reimplemented here
//! with identical names and signatures: [`RngCore`], [`Rng`],
//! [`SeedableRng`], the [`distributions::Standard`] distribution, uniform
//! ranges for `gen_range`, and [`seq::SliceRandom`].
//!
//! Determinism contract: everything in this crate is a pure function of the
//! RNG stream, so any workspace seed reproduces bit-identical results across
//! runs and platforms.  No global/thread-local generators are provided (the
//! workspace never uses `thread_rng`, and omitting it keeps every code path
//! explicitly seeded).

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with SplitMix64 —
    /// different `u64` seeds give well-separated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (public so sibling shims can share the expansion).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for
    /// integers and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty => $via:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                        u64 => next_u64, usize => next_u64,
                        i8 => next_u32, i16 => next_u32, i32 => next_u32,
                        i64 => next_u64, isize => next_u64);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            // Use the top bit; low bits of some generators are weaker.
            rng.next_u32() >> 31 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// A half-open or inclusive range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit: f64 = distributions::Distribution::sample(&distributions::Standard, rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from its [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Minimal `rngs` namespace for API parity (intentionally empty: the
/// workspace always seeds explicitly).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// Deterministic counter "RNG" for unit-testing the adapters.
    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(13);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn splitmix_differs_per_step() {
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
    }
}
