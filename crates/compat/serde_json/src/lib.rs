//! JSON encoding/decoding for the offline serde shim.
//!
//! Mirrors the `serde_json` entry points the workspace uses
//! ([`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], [`Value`]) on top of the [`serde`] shim's value model.
//!
//! Guarantees relied on elsewhere in the repository:
//!
//! * **Canonical output** — objects print in key order (the shim's object
//!   is a `BTreeMap`), so equal values produce byte-identical JSON.
//! * **Lossless round-trips** — integers keep full `u64`/`i64` precision;
//!   floats print with Rust's shortest round-trip representation.  Special
//!   floats (`NaN`, `±∞`) have no JSON literal and encode as `null`, which
//!   decodes back to `NaN`.

pub use serde::{Error, Map, Number, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

/// Parse JSON text into a [`Value`] tree, requiring full input consumption.
pub fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, vv)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, vv, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) => {
            if v.is_finite() {
                // Shortest representation that round-trips; force a decimal
                // point so the value re-parses as a float.
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    out.push_str(&s);
                } else {
                    out.push_str(&s);
                    out.push_str(".0");
                }
            } else {
                // JSON cannot express NaN/Infinity.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::msg(format!(
            "expected `{}` at byte {}",
            byte as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error::msg(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                        let mut code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogate pair.
                        if (0xD800..0xDC00).contains(&code)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            let lo_hex = bytes
                                .get(*pos + 3..*pos + 7)
                                .ok_or_else(|| Error::msg("truncated surrogate"))?;
                            let lo_hex = std::str::from_utf8(lo_hex)
                                .map_err(|_| Error::msg("invalid surrogate"))?;
                            let lo = u32::from_str_radix(lo_hex, 16)
                                .map_err(|_| Error::msg("invalid surrogate"))?;
                            if (0xDC00..0xE000).contains(&lo) {
                                code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                *pos += 6;
                            }
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::msg("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::msg("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Num(Number::U(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Num(Number::I(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Num(Number::F(f)))
        .map_err(|_| Error::msg(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        label: String,
        weight: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        id: u64,
        name: String,
        flags: Vec<bool>,
        nested: Option<Nested>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Empty,
        Wrapped(u32),
        Pair(u32, u32),
        Shaped { x: i64, y: String },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u64);

    #[test]
    fn struct_roundtrip() {
        let demo = Demo {
            id: u64::MAX - 1,
            name: "hello \"world\"\n".into(),
            flags: vec![true, false],
            nested: Some(Nested {
                label: "x".into(),
                weight: 0.1,
            }),
        };
        let json = to_string(&demo).unwrap();
        let back: Demo = from_str(&json).unwrap();
        assert_eq!(back, demo);
        // Canonical: serializing again gives identical bytes.
        assert_eq!(to_string(&back).unwrap(), json);
    }

    #[test]
    fn enum_all_variant_shapes_roundtrip() {
        for kind in [
            Kind::Empty,
            Kind::Wrapped(7),
            Kind::Pair(1, 2),
            Kind::Shaped {
                x: -9,
                y: "z".into(),
            },
        ] {
            let json = to_string(&kind).unwrap();
            let back: Kind = from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
        assert_eq!(to_string(&Kind::Empty).unwrap(), "\"Empty\"");
        assert_eq!(to_string(&Kind::Wrapped(7)).unwrap(), "{\"Wrapped\":7}");
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Newtype(12)).unwrap(), "12");
        let back: Newtype = from_str("12").unwrap();
        assert_eq!(back, Newtype(12));
    }

    #[test]
    fn option_none_roundtrips() {
        let demo = Demo {
            id: 0,
            name: String::new(),
            flags: vec![],
            nested: None,
        };
        let json = to_string(&demo).unwrap();
        assert!(json.contains("\"nested\":null"));
        let back: Demo = from_str(&json).unwrap();
        assert_eq!(back, demo);
        // A missing key also decodes as None.
        let sparse: Demo = from_str("{\"id\":0,\"name\":\"\",\"flags\":[]}").unwrap();
        assert_eq!(sparse, demo);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 6.02214076e23, -0.0, 12345.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
        let nan_json = to_string(&f64::NAN).unwrap();
        assert_eq!(nan_json, "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn pretty_output_parses_back() {
        let demo = Demo {
            id: 3,
            name: "p".into(),
            flags: vec![true],
            nested: Some(Nested {
                label: "l".into(),
                weight: 2.5,
            }),
        };
        let pretty = to_string_pretty(&demo).unwrap();
        assert!(pretty.contains('\n'));
        let back: Demo = from_str(&pretty).unwrap();
        assert_eq!(back, demo);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("[").is_err());
        assert!(from_str::<Demo>("{\"id\": \"nope\"}").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(s, "aé😀b");
        let round = to_string(&"tab\there").unwrap();
        assert_eq!(round, "\"tab\\there\"");
    }
}
