//! Offline, dependency-free stand-in for `serde` + `serde_derive`.
//!
//! The workspace builds in a container without crates.io access, so this
//! crate supplies the subset of serde the workspace uses, re-shaped around a
//! simple self-describing [`Value`] tree (the same data model JSON has):
//!
//! * [`Serialize`] — convert `&self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`&Value`](Value);
//! * `#[derive(Serialize, Deserialize)]` — provided by the sibling
//!   `serde_derive` proc-macro for named/tuple structs and enums with unit,
//!   newtype and struct variants (externally tagged, like real serde).
//!
//! Numbers are kept lossless: integers round-trip through [`Number::U`] /
//! [`Number::I`] exactly (the full `u64` seed space matters for
//! reproducible simulation specs), floats through Rust's shortest-repr
//! formatting, which `f64` round-trips bit-exactly.
//!
//! Objects use a `BTreeMap`, so serialization output is canonical: two
//! equal values always produce identical JSON — which the repository's
//! reproducibility tests ("same spec + same seed ⇒ identical report")
//! rely on.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Object representation: key-ordered for canonical output.
pub type Map = BTreeMap<String, Value>;

/// A lossless numeric value.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b || (a.is_nan() && b.is_nan()),
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A self-describing value (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(Map),
}

impl Value {
    /// Borrow as object.
    pub fn as_obj(&self) -> Option<&Map> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as mutable object (API parity with `serde_json`'s
    /// `as_object_mut`; used by tests that surgically edit spec values).
    pub fn as_obj_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Fetch an object field, with `Null` standing in for absent keys.
    pub fn field<'a>(&'a self, key: &str) -> &'a Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Obj(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A (de)serialization error with a breadcrumb path.
#[derive(Clone, Debug)]
pub struct Error {
    path: Vec<String>,
    message: String,
}

impl Error {
    /// A fresh error.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            path: Vec::new(),
            message: message.into(),
        }
    }

    /// Error for a kind mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::msg(format!("expected {what}, got {}", got.kind()))
    }

    /// Push a field/element breadcrumb (innermost first).
    pub fn in_field(mut self, field: impl Into<String>) -> Self {
        self.path.push(field.into());
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            let mut path: Vec<&str> = self.path.iter().map(String::as_str).collect();
            path.reverse();
            write!(f, "at {}: {}", path.join("."), self.message)
        }
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by the derive: fetch + deserialize one struct field.
pub fn from_value_field<T: Deserialize>(obj: &Map, key: &str) -> Result<T, Error> {
    static NULL: Value = Value::Null;
    T::from_value(obj.get(key).unwrap_or(&NULL)).map_err(|e| e.in_field(key))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Num(Number::U(v as u64)) } else { Value::Num(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            // JSON has no NaN/Infinity literals; they serialize as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("single-character string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_arr().ok_or_else(|| Error::expected("array", v))?;
        arr.iter()
            .enumerate()
            .map(|(i, x)| T::from_value(x).map_err(|e| e.in_field(format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::expected("array (tuple)", v))?;
                let expected = [$($idx,)+].len();
                if arr.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got array of {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])
                    .map_err(|e| e.in_field(format!("[{}]", $idx)))?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Types usable as object keys (serialized as strings).
fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Num(Number::U(u)) => Ok(u.to_string()),
        Value::Num(Number::I(i)) => Ok(i.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!(
            "map key must be scalar, got {}",
            other.kind()
        ))),
    }
}

fn key_from_string(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        return Value::Num(Number::U(u));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Num(Number::I(i));
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Str(s.to_owned()),
    }
}

macro_rules! impl_serde_map {
    ($($map:ident),*) => {$(
        impl<K: Serialize + Ord + std::hash::Hash, V: Serialize> Serialize for $map<K, V> {
            fn to_value(&self) -> Value {
                let mut out = Map::new();
                for (k, v) in self {
                    // Keys are stringified; BTreeMap output stays canonical.
                    let key = key_to_string(&k.to_value())
                        .expect("unsupported map key type");
                    out.insert(key, v.to_value());
                }
                Value::Obj(out)
            }
        }
        impl<K, V> Deserialize for $map<K, V>
        where
            K: Deserialize + Ord + std::hash::Hash + Eq,
            V: Deserialize,
        {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let obj = v.as_obj().ok_or_else(|| Error::expected("object", v))?;
                let mut out = $map::new();
                for (ks, vv) in obj {
                    let key = K::from_value(&key_from_string(ks))
                        .map_err(|e| e.in_field(ks.clone()))?;
                    out.insert(key, V::from_value(vv).map_err(|e| e.in_field(ks.clone()))?);
                }
                Ok(out)
            }
        }
    )*};
}
impl_serde_map!(BTreeMap, HashMap);

macro_rules! impl_serde_set {
    ($($set:ident),*) => {$(
        impl<T: Serialize + Ord + std::hash::Hash> Serialize for $set<T> {
            fn to_value(&self) -> Value {
                Value::Arr(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize + Ord + std::hash::Hash + Eq> Deserialize for $set<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::expected("array", v))?;
                arr.iter().map(T::from_value).collect()
            }
        }
    )*};
}
impl_serde_set!(BTreeSet, HashSet);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_fold_through_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::Num(Number::U(3)));
    }

    #[test]
    fn numbers_are_lossless() {
        let big = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
        let neg = (-42i64).to_value();
        assert_eq!(i64::from_value(&neg).unwrap(), -42);
        assert!(u64::from_value(&neg).is_err());
    }

    #[test]
    fn map_keys_roundtrip_through_strings() {
        let mut m: HashMap<u64, String> = HashMap::new();
        m.insert(17, "x".into());
        let v = m.to_value();
        let back: HashMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_carry_paths() {
        let v = Value::Obj(Map::new());
        let err = from_value_field::<u32>(v.as_obj().unwrap(), "missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }
}
