//! Offline subset of the `smallvec` crate: a vector that stores its first
//! `N` elements inline and only touches the heap when it grows past them.
//!
//! The workspace builds without crates.io access, so this shim provides the
//! slice of the real crate's API the engine's hot path uses: `push`,
//! `clear` (which keeps any spilled heap allocation for reuse), `len`,
//! iteration, and a draining consumer.  Unlike the real crate it avoids
//! `unsafe` entirely — the inline region is an array of `Option<T>` — which
//! costs a discriminant per slot but preserves the property that matters
//! here: the common low-degree case performs **zero heap allocations**, and
//! a spilled buffer, once allocated, is reused for the rest of the run.

/// A vector with `N` inline slots and a lazily-allocated heap spill.
///
/// Invariant: `heap` is `None` while `len <= N` elements have ever been
/// held since the last spill; once spilled, all elements live in `heap`
/// (the inline region is empty) and stay there — `clear` empties the heap
/// but keeps its capacity, exactly what a per-round scratch buffer wants.
#[derive(Clone, Debug)]
pub struct SmallVec<T, const N: usize> {
    inline: [Option<T>; N],
    inline_len: usize,
    heap: Option<Vec<T>>,
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> Self {
        SmallVec {
            inline: std::array::from_fn(|_| None),
            inline_len: 0,
            heap: None,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.heap {
            Some(heap) => heap.len(),
            None => self.inline_len,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once elements have spilled to the heap.
    pub fn spilled(&self) -> bool {
        self.heap.is_some()
    }

    /// The inline capacity `N`.
    pub const fn inline_capacity() -> usize {
        N
    }

    /// Append an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        match &mut self.heap {
            Some(heap) => heap.push(value),
            None if self.inline_len < N => {
                self.inline[self.inline_len] = Some(value);
                self.inline_len += 1;
            }
            None => {
                let mut heap = Vec::with_capacity(2 * N.max(1));
                for slot in &mut self.inline {
                    heap.extend(slot.take());
                }
                heap.push(value);
                self.inline_len = 0;
                self.heap = Some(heap);
            }
        }
    }

    /// Drop all elements.  A spilled heap keeps its capacity (clear-not-
    /// drop), so a buffer that grew once never allocates again.
    pub fn clear(&mut self) {
        match &mut self.heap {
            Some(heap) => heap.clear(),
            None => {
                for slot in &mut self.inline[..self.inline_len] {
                    *slot = None;
                }
                self.inline_len = 0;
            }
        }
    }

    /// Iterate over the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (inline, heap): (&[Option<T>], &[T]) = match &self.heap {
            Some(heap) => (&[], heap.as_slice()),
            None => (&self.inline[..self.inline_len], &[]),
        };
        inline
            .iter()
            .map(|slot| slot.as_ref().expect("slots below inline_len are filled"))
            .chain(heap.iter())
    }

    /// Move every element out, in insertion order, leaving the vector empty
    /// (spilled capacity kept).  The draining-closure shape sidesteps a
    /// custom iterator type while letting callers consume without cloning.
    pub fn drain_into(&mut self, mut consume: impl FnMut(T)) {
        match &mut self.heap {
            Some(heap) => {
                for value in heap.drain(..) {
                    consume(value);
                }
            }
            None => {
                for slot in &mut self.inline[..self.inline_len] {
                    consume(slot.take().expect("slots below inline_len are filled"));
                }
                self.inline_len = 0;
            }
        }
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut sv = SmallVec::new();
        for value in iter {
            sv.push(value);
        }
        sv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_below_capacity() {
        let mut sv: SmallVec<u32, 4> = SmallVec::new();
        assert!(sv.is_empty());
        for i in 0..4 {
            sv.push(i);
        }
        assert_eq!(sv.len(), 4);
        assert!(!sv.spilled());
        assert_eq!(sv.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_and_preserves_order() {
        let mut sv: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..7 {
            sv.push(i);
        }
        assert!(sv.spilled());
        assert_eq!(sv.len(), 7);
        assert_eq!(
            sv.iter().copied().collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_keeps_spilled_capacity() {
        let mut sv: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..10 {
            sv.push(i);
        }
        sv.clear();
        assert!(sv.is_empty());
        assert!(sv.spilled(), "spilled capacity is kept for reuse");
        sv.push(99);
        assert_eq!(sv.iter().copied().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn drain_into_moves_everything_out_in_order() {
        for count in [0usize, 3, 8] {
            let mut sv: SmallVec<String, 4> = (0..count).map(|i| i.to_string()).collect();
            let mut out = Vec::new();
            sv.drain_into(|s| out.push(s));
            assert!(sv.is_empty());
            assert_eq!(out, (0..count).map(|i| i.to_string()).collect::<Vec<_>>());
            // The buffer is immediately reusable.
            sv.push("again".into());
            assert_eq!(sv.len(), 1);
        }
    }

    #[test]
    fn inline_clear_drops_values() {
        let mut sv: SmallVec<std::rc::Rc<u8>, 4> = SmallVec::new();
        let tracked = std::rc::Rc::new(7u8);
        sv.push(tracked.clone());
        assert_eq!(std::rc::Rc::strong_count(&tracked), 2);
        sv.clear();
        assert_eq!(std::rc::Rc::strong_count(&tracked), 1);
    }
}
