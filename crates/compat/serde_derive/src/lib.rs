//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! since the build container has no registry access).  Supported shapes —
//! which cover every derive in this workspace:
//!
//! * structs with named fields (including private fields and simple type
//!   generics like `Envelope<M>`),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit, newtype and struct variants, externally tagged
//!   exactly like real serde: `"Variant"`, `{"Variant": value}` and
//!   `{"Variant": {..fields..}}`.
//!
//! Not supported (reject loudly rather than miscompile): unions, lifetime
//! or const generics, `where` clauses and `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Parsed {
    name: String,
    /// Plain type-parameter names (`M` in `Envelope<M>`).
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&parsed),
        Mode::Deserialize => gen_deserialize(&parsed),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive generated invalid code: {e}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    if keyword == "union" {
        return Err("serde_derive shim does not support unions".into());
    }
    if keyword != "struct" && keyword != "enum" {
        return Err(format!("expected struct/enum, found `{keyword}`"));
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    // Optional generics.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expecting_param = true;
            let mut in_bounds = false;
            while depth > 0 {
                match tokens.next() {
                    Some(TokenTree::Punct(p)) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => {
                            expecting_param = true;
                            in_bounds = false;
                        }
                        ':' if depth == 1 => in_bounds = true,
                        '\'' => {
                            return Err(
                                "serde_derive shim does not support lifetime generics".into()
                            )
                        }
                        _ => {}
                    },
                    Some(TokenTree::Ident(id)) => {
                        let id = id.to_string();
                        if id == "const" {
                            return Err("serde_derive shim does not support const generics".into());
                        }
                        if depth == 1 && expecting_param && !in_bounds {
                            generics.push(id);
                            expecting_param = false;
                        }
                    }
                    Some(_) => {}
                    None => return Err("unbalanced generics".into()),
                }
            }
        }
    }

    // Body.
    let kind = if keyword == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                return Err("serde_derive shim does not support where clauses".into())
            }
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };

    Ok(Parsed {
        name,
        generics,
        kind,
    })
}

/// Extract field names from `a: T, pub b: U, ...`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Skip the type: until a comma at angle-bracket depth 0.
        let mut depth = 0usize;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth = depth.saturating_sub(1);
                    } else if c == ',' && depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    Ok(fields)
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for token in stream {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (e.g. #[default]).
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(count)
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut depth = 0usize;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth = depth.saturating_sub(1);
                    } else if c == ',' && depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generics_for(parsed: &Parsed, bound: &str) -> (String, String) {
    if parsed.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let with_bounds: Vec<String> = parsed
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", with_bounds.join(", ")),
            format!("<{}>", parsed.generics.join(", ")),
        )
    }
}

fn gen_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let (impl_generics, ty_generics) = generics_for(parsed, "::serde::Serialize");
    let body = match &parsed.kind {
        Kind::NamedStruct(fields) => {
            let mut code = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                code.push_str(&format!(
                    "__m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            code.push_str("::serde::Value::Obj(__m)");
            code
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         __m.insert({vname:?}.to_string(), ::serde::Serialize::to_value(__f0));\n\
                         ::serde::Value::Obj(__m)\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({vname:?}.to_string(), ::serde::Value::Arr(vec![{}]));\n\
                             ::serde::Value::Obj(__m)\n}}\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert({f:?}.to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => {{\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({vname:?}.to_string(), ::serde::Value::Obj(__inner));\n\
                             ::serde::Value::Obj(__m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl {impl_generics} ::serde::Serialize for {name} {ty_generics} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let (impl_generics, ty_generics) = generics_for(parsed, "::serde::Deserialize");
    let body = match &parsed.kind {
        Kind::NamedStruct(fields) => {
            let mut init = String::new();
            for f in fields {
                init.push_str(&format!("{f}: ::serde::from_value_field(__m, {f:?})?,\n"));
            }
            format!(
                "let __m = __v.as_obj().ok_or_else(|| ::serde::Error::expected(\"object\", __v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{init}}})"
            )
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_arr().ok_or_else(|| ::serde::Error::expected(\"array\", __v))?;\n\
                 if __a.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(\"wrong tuple arity\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!(
            "match __v {{\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             __other => ::std::result::Result::Err(::serde::Error::expected(\"null\", __other)),\n}}"
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __a = __inner.as_arr().ok_or_else(|| ::serde::Error::expected(\"array\", __inner))?;\n\
                             if __a.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\"wrong variant arity\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut init = String::new();
                        for f in fields {
                            init.push_str(&format!(
                                "{f}: ::serde::from_value_field(__mm, {f:?})?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __mm = __inner.as_obj().ok_or_else(|| ::serde::Error::expected(\"object\", __inner))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{init}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Obj(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                 __other => ::std::result::Result::Err(::serde::Error::expected(\
                 \"externally tagged enum\", __other)),\n}}"
            )
        }
    };
    format!(
        "impl {impl_generics} ::serde::Deserialize for {name} {ty_generics} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
