//! A real ChaCha8 random number generator for the offline workspace.
//!
//! This is a faithful implementation of the ChaCha stream cipher core
//! (D. J. Bernstein) with 8 rounds, driven as a counter-mode keystream
//! generator: 256-bit key from the seed, 64-bit block counter, 64-bit
//! stream id (always 0 here).  It plugs into the local `rand` shim through
//! [`rand::RngCore`] / [`rand::SeedableRng`].
//!
//! The generator passes the usual smoke statistics (equidistribution of
//! bytes, no short cycles at workspace scales) and — more importantly for
//! this repository — is *fully deterministic and platform independent*, so
//! every simulation seed reproduces bit-identical runs.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha8-based RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state rows 1–2 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 = buffer exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, inp) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha8_known_answer_zero_key() {
        // ChaCha8 keystream, all-zero key and nonce, block 0.  First two
        // 32-bit words (little-endian) of the reference keystream
        // 3e00ef2f895f40d67f5bb8e81f09a5a1…
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        let second = rng.next_u32();
        assert_eq!(first, u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]));
        assert_eq!(second, u32::from_le_bytes([0x89, 0x5f, 0x40, 0xd6]));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bytes_look_equidistributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[rng.gen::<bool>() as usize] += 1;
        }
        // 10k fair coin flips: each side within 4 sigma of 5000.
        assert!((4800..=5200).contains(&counts[0]), "{counts:?}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
