//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`, [`black_box`]) with a simple but
//! honest measurement loop: warm-up, then timed batches until a target
//! measurement time, reporting mean / min per-iteration wall time.
//!
//! It is *not* criterion — no outlier analysis, no HTML reports — but it
//! runs the same bench sources unmodified and prints comparable numbers,
//! which is what the offline container can support.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name plus parameter, like criterion's `BenchmarkId::new`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration.
    mean_ns: f64,
    /// Fastest observed iteration.
    min_ns: f64,
    /// Iterations actually run.
    iterations: u64,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure a closure: warm-up, then timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost probe.
        let warmup_start = Instant::now();
        black_box(f());
        let probe = warmup_start.elapsed().as_nanos().max(1) as u64;

        // Choose a batch size targeting ~10ms per batch.
        let batch = (10_000_000u64 / probe).clamp(1, 1_000_000);
        let deadline = Instant::now() + self.measurement_time;
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let mut min_batch_ns = u128::MAX;
        while Instant::now() < deadline || total_iters == 0 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            total_ns += elapsed;
            total_iters += batch;
            min_batch_ns = min_batch_ns.min(elapsed / batch as u128);
            if total_iters >= 100_000_000 {
                break;
            }
        }
        self.mean_ns = total_ns as f64 / total_iters as f64;
        self.min_ns = min_batch_ns as f64;
        self.iterations = total_iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim sizes batches by time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let mut bencher = Bencher {
            mean_ns: 0.0,
            min_ns: 0.0,
            iterations: 0,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut bencher, input);
        println!(
            "{full:<55} time: [{} mean, {} min, {} iters]",
            format_ns(bencher.mean_ns),
            format_ns(bencher.min_ns),
            bencher.iterations
        );
        self
    }

    /// Run one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), move |b, _| f(b))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short but stable: the offline harness favours quick feedback.
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("run", &mut f);
        group.finish();
        self
    }
}

/// Define a group-running function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, &x| {
            ran = true;
            b.iter(|| x + 1)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 128).name, "f/128");
        assert_eq!(BenchmarkId::from_parameter("p").name, "p");
    }
}
