//! Offline subset of the `proptest` property-testing API.
//!
//! Supports the pieces the workspace's tests use: the [`proptest!`] macro
//! with an inline `#![proptest_config(...)]`, range / `any::<T>()` /
//! `collection::vec` / `option::of` strategies, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimised;
//! * **fixed RNG seed** — cases are deterministic across runs (the seed
//!   incorporates the test name so distinct tests explore distinct inputs).

use std::ops::Range;

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The shim's internal RNG (SplitMix64: tiny and statistically fine for
/// test-case generation).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for a named property.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = state.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `span` (> 0).
    pub fn below(&mut self, span: u64) -> u64 {
        self.next_u64() % span
    }
}

/// A generator of random values.
pub trait Strategy {
    /// Generated type.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Types with a natural "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.start
                + rng.below((self.size.end - self.size.start).max(1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for optional values (≈50% `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property (reports instead of panicking mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "property assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err(format!(
                "property assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                __a,
                __b
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err(format!(
                "property assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                __a
            ));
        }
    }};
}

/// Define property tests (see module docs for supported syntax).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?}, ",)* ""),
                    __case $(, &$arg)*
                );
                let __result: ::std::result::Result<(), String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = __result {
                    panic!("{msg}\n  inputs: {__inputs}");
                }
            }
        }
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 1u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        /// Vec strategy respects its length range.
        #[test]
        fn vec_lengths(v in proptest::collection::vec(0u32..9, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 9));
        }

        /// Option strategy produces both variants over enough cases.
        #[test]
        fn option_of(o in proptest::option::of(0u8..3)) {
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }
    }

    // `proptest` inside this crate's own tests refers to the crate root.
    use crate as proptest;

    #[test]
    #[should_panic(expected = "property assertion failed")]
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(_x in 0u32..2) {
                prop_assert!(false);
            }
        }
        always_fails();
    }
}
