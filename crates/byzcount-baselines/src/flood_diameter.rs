//! Diameter-based estimation by leader flooding (Section 1.2).
//!
//! If an honest leader were available, it could flood a token; every node's
//! first-arrival round is at most the diameter, which is `Θ(log n)` on a
//! sparse expander, giving a constant-factor estimate of `log n`.  The
//! catch — and the reason the paper rejects this approach — is that electing
//! that leader under Byzantine faults without knowing `n` is itself an open
//! problem, and a Byzantine node can trivially pretend to be a (closer)
//! leader, shrinking everyone's estimate.

use crate::attack::BaselineAttack;
use netsim_runtime::{
    run_with_engine_fleet, Action, EngineConfig, EngineKind, Envelope, FaultPlan, MessageSize,
    NodeContext, NullAdversary, Outbox, Protocol, Recorder, RemoteFleet, RunError, RunResult,
    SizedMessage, Topology,
};
use netsim_wire::{Reader, Wire, WireError};
use rand_chacha::ChaCha8Rng;

/// The flooded token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenMsg;

impl MessageSize for TokenMsg {
    fn message_size(&self) -> SizedMessage {
        SizedMessage::new(0, 1)
    }
}

/// Canonical binary encoding: the token carries no data, so it encodes to
/// zero bytes (the envelope around it carries sender/receiver).
impl Wire for TokenMsg {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TokenMsg)
    }
}

/// Per-node state of the flooding diameter estimator.
#[derive(Clone, Debug)]
pub struct FloodDiameterEstimator {
    is_leader: bool,
    byz: Option<BaselineAttack>,
    ttl: u64,
    first_seen: Option<u64>,
}

impl FloodDiameterEstimator {
    /// Construct a node; exactly one honest node should be the leader.
    pub fn new(is_leader: bool, byz: Option<BaselineAttack>, ttl: u64) -> Self {
        FloodDiameterEstimator {
            is_leader,
            byz,
            ttl,
            first_seen: None,
        }
    }
}

impl Protocol for FloodDiameterEstimator {
    type Message = TokenMsg;
    /// The round at which the token was first seen (≈ distance to the
    /// leader, a proxy for `log n`).
    type Output = u64;

    fn step(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<TokenMsg>],
        outbox: &mut Outbox<TokenMsg>,
        _rng: &mut ChaCha8Rng,
    ) -> Action<u64> {
        if ctx.round == 0 {
            let pretend_leader = matches!(self.byz, Some(BaselineAttack::Inflate));
            if (self.is_leader && self.byz.is_none()) || pretend_leader {
                self.first_seen = Some(0);
                outbox.broadcast(ctx.neighbors.iter(), TokenMsg);
            }
            return Action::Continue;
        }
        if self.first_seen.is_none() && !inbox.is_empty() {
            self.first_seen = Some(ctx.round);
            if !matches!(self.byz, Some(BaselineAttack::Suppress)) {
                outbox.broadcast(ctx.neighbors.iter(), TokenMsg);
            }
        }
        if ctx.round >= self.ttl {
            match self.first_seen {
                Some(r) => Action::Decide(r),
                None => Action::Decide(u64::MAX),
            }
        } else {
            Action::Continue
        }
    }
}

/// Run the flooding estimator with node 0 as the (honest) leader.
pub fn run_flood_diameter<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
) -> RunResult<u64> {
    run_flood_diameter_faulty(topo, byzantine, attack, ttl, seed, None)
}

/// [`run_flood_diameter`] with an optional network [`FaultPlan`] installed
/// on the engine.
pub fn run_flood_diameter_faulty<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
) -> RunResult<u64> {
    run_flood_diameter_engine(
        topo,
        byzantine,
        attack,
        ttl,
        seed,
        fault_plan,
        EngineKind::Sync,
    )
}

/// [`run_flood_diameter_faulty`] with an explicit [`EngineKind`] (classic
/// or sharded; results are byte-identical either way).
pub fn run_flood_diameter_engine<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
) -> RunResult<u64> {
    run_flood_diameter_recorded(topo, byzantine, attack, ttl, seed, fault_plan, engine, None)
}

/// [`run_flood_diameter_engine`] with an optional [`Recorder`] observing
/// the run (observation-only: results are byte-identical either way).
#[allow(clippy::too_many_arguments)]
pub fn run_flood_diameter_recorded<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
) -> RunResult<u64> {
    run_flood_diameter_fleet(
        topo, byzantine, attack, ttl, seed, fault_plan, engine, recorder, None,
    )
    .expect("in-process engines are infallible")
}

/// Build the per-node estimator states for global node ids `range` (the
/// full run is `0..topo.len()`; shard workers build their assigned chunk).
/// Node 0 is always the leader.
pub fn flood_diameter_nodes(
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    range: std::ops::Range<usize>,
) -> Vec<FloodDiameterEstimator> {
    range
        .map(|i| {
            FloodDiameterEstimator::new(i == 0, if byzantine[i] { Some(attack) } else { None }, ttl)
        })
        .collect()
}

/// [`run_flood_diameter_recorded`] with an optional remote shard-worker
/// fleet for the distributed engine — the only flood runner that can fail,
/// and only on remote transports.
#[allow(clippy::too_many_arguments)]
pub fn run_flood_diameter_fleet<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
    fleet: Option<&RemoteFleet>,
) -> Result<RunResult<u64>, RunError> {
    let nodes = flood_diameter_nodes(byzantine, attack, ttl, 0..topo.len());
    let config = EngineConfig {
        max_rounds: ttl + 4,
        stop_when_all_decided: true,
    };
    run_with_engine_fleet(
        engine,
        topo,
        nodes,
        byzantine.to_vec(),
        NullAdversary,
        config,
        seed,
        fault_plan,
        recorder,
        fleet,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::metrics::diameter_estimate;
    use netsim_graph::SmallWorldNetwork;

    #[test]
    fn honest_flood_matches_bfs_distances() {
        let n = 1024usize;
        let net = SmallWorldNetwork::generate_seeded(n, 8, 1).unwrap();
        let byz = vec![false; n];
        let ttl = (3.0 * (n as f64).log2()).ceil() as u64;
        let result = run_flood_diameter(net.h().csr(), &byz, BaselineAttack::None, ttl, 2);
        assert!(result.completed);
        let max_round = result.outputs.iter().map(|o| o.unwrap()).max().unwrap();
        let diam = diameter_estimate(net.h().csr(), 0).lower_bound as u64;
        // The farthest node hears the token after ecc(leader) rounds, which
        // is between diam/2 and diam.
        assert!(
            max_round <= diam + 1,
            "max arrival {max_round} vs diameter {diam}"
        );
        assert!(max_round as f64 >= (n as f64).log2() / (8f64).log2() - 1.0);
    }

    #[test]
    fn fake_leaders_shrink_estimates() {
        let n = 512usize;
        let net = SmallWorldNetwork::generate_seeded(n, 8, 3).unwrap();
        let mut byz = vec![false; n];
        // A handful of Byzantine nodes all pretend to be the leader.
        for i in [37usize, 113, 301, 444] {
            byz[i] = true;
        }
        let ttl = (3.0 * (n as f64).log2()).ceil() as u64;
        let honest =
            run_flood_diameter(net.h().csr(), &vec![false; n], BaselineAttack::None, ttl, 4);
        let attacked = run_flood_diameter(net.h().csr(), &byz, BaselineAttack::Inflate, ttl, 4);
        let sum = |r: &RunResult<u64>, mask: &[bool]| -> f64 {
            let vals: Vec<u64> = r
                .outputs
                .iter()
                .enumerate()
                .filter(|(i, o)| !mask[*i] && o.is_some())
                .map(|(_, o)| o.unwrap())
                .collect();
            vals.iter().sum::<u64>() as f64 / vals.len() as f64
        };
        assert!(
            sum(&attacked, &byz) < sum(&honest, &vec![false; n]),
            "fake leaders must shrink the average first-arrival round"
        );
    }
}
