//! # byzcount-baselines
//!
//! Non-Byzantine-tolerant network size estimators, used to reproduce the
//! paper's motivating observations (Section 1.2):
//!
//! * [`GeometricSupportEstimator`] — every node draws a geometric color and
//!   the network floods the maximum; the maximum concentrates around
//!   `log₂ n`.  Accurate without faults, broken by a single Byzantine node
//!   that either fakes a huge color or suppresses the true maximum.
//! * [`ExponentialSupportEstimator`] — support estimation with exponential
//!   variables (min-aggregation, averaged over repetitions); same failure
//!   mode, in the opposite direction (a faked 0 makes `n̂` explode).
//! * [`SpanningTreeCounter`] — BFS spanning tree plus converge-cast: exact
//!   count without faults, arbitrarily corruptible by one Byzantine node on
//!   the tree.
//! * [`FloodDiameterEstimator`] — a designated leader floods a token and
//!   every node uses its first-arrival round as a proxy for `log n`
//!   (requires an honest, pre-agreed leader — itself unobtainable in the
//!   Byzantine setting, which is the paper's point).
//!
//! Every estimator runs on the same [`netsim_runtime`] engine as the real
//! protocol, and [`BaselineAttack`] provides the minimal Byzantine
//! behaviours (value inflation / suppression) that demonstrate their
//! fragility for experiment E4.

pub mod attack;
pub mod exponential;
pub mod flood_diameter;
pub mod geometric;
pub mod spanning_tree;
pub mod workloads;

pub use attack::BaselineAttack;
pub use exponential::{
    exponential_support_nodes, run_exponential_support, run_exponential_support_engine,
    run_exponential_support_faulty, run_exponential_support_fleet,
    run_exponential_support_recorded, ExponentialSupportEstimator,
};
pub use flood_diameter::{
    flood_diameter_nodes, run_flood_diameter, run_flood_diameter_engine, run_flood_diameter_faulty,
    run_flood_diameter_fleet, run_flood_diameter_recorded, FloodDiameterEstimator,
};
pub use geometric::{
    geometric_support_nodes, run_geometric_support, run_geometric_support_engine,
    run_geometric_support_faulty, run_geometric_support_fleet, run_geometric_support_recorded,
    GeometricSupportEstimator,
};
pub use spanning_tree::{
    run_spanning_tree_count, run_spanning_tree_count_engine, run_spanning_tree_count_faulty,
    run_spanning_tree_count_fleet, run_spanning_tree_count_recorded, spanning_tree_nodes,
    SpanningTreeCounter,
};
pub use workloads::{
    attack_from_spec, ExponentialSupportWorkload, FloodDiameterWorkload, GeometricSupportWorkload,
    SpanningTreeWorkload,
};
