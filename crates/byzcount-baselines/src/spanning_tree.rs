//! Exact counting via a BFS spanning tree and converge-cast (Section 1.2's
//! "simply build a spanning tree" remark).
//!
//! A designated root floods an invitation; every node adopts its first
//! inviter as parent, learns its children from the accept/reject replies,
//! converge-casts subtree counts to the root, and the root floods the exact
//! total back down.  Exact without faults; a single Byzantine node on the
//! tree can report an arbitrary subtree count (inflate) or simply not
//! respond, dead-locking the converge-cast (suppress).

use crate::attack::BaselineAttack;
use netsim_graph::NodeId;
use netsim_runtime::{
    run_with_engine_fleet, Action, EngineConfig, EngineKind, Envelope, FaultPlan, MessageSize,
    NodeContext, NullAdversary, Outbox, Protocol, Recorder, RemoteFleet, RunError, RunResult,
    SizedMessage, Topology,
};
use netsim_wire::{Reader, Wire, WireError};
use rand_chacha::ChaCha8Rng;

/// Spanning-tree protocol messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeMsg {
    /// "Join my tree" — sent once by every node after it joins.
    Invite,
    /// "You are my parent."
    Accept,
    /// "I already have a parent."
    Reject,
    /// Converge-cast subtree count.
    Count(u64),
    /// The root's final total, flooded back down.
    Result(u64),
}

impl MessageSize for TreeMsg {
    fn message_size(&self) -> SizedMessage {
        match self {
            TreeMsg::Invite | TreeMsg::Accept | TreeMsg::Reject => SizedMessage::new(0, 2),
            TreeMsg::Count(_) | TreeMsg::Result(_) => SizedMessage::new(0, 64),
        }
    }
}

/// Canonical binary encoding (tag byte + count), required to run this
/// baseline on the distributed engine's shard channels.
impl Wire for TreeMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TreeMsg::Invite => out.push(0),
            TreeMsg::Accept => out.push(1),
            TreeMsg::Reject => out.push(2),
            TreeMsg::Count(c) => {
                out.push(3);
                c.encode(out);
            }
            TreeMsg::Result(c) => {
                out.push(4);
                c.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(TreeMsg::Invite),
            1 => Ok(TreeMsg::Accept),
            2 => Ok(TreeMsg::Reject),
            3 => Ok(TreeMsg::Count(u64::decode(r)?)),
            4 => Ok(TreeMsg::Result(u64::decode(r)?)),
            other => Err(WireError::Corrupt(format!(
                "unknown tree-message tag {other}"
            ))),
        }
    }
}

/// The subtree count an inflating Byzantine node reports.
pub const INFLATED_COUNT: u64 = 1_000_000_000;

/// Per-node state of the spanning-tree counter.
#[derive(Clone, Debug)]
pub struct SpanningTreeCounter {
    byz: Option<BaselineAttack>,
    is_root: bool,
    joined: bool,
    parent: Option<u32>,
    invite_round: Option<u64>,
    responses: usize,
    children: Vec<u32>,
    child_counts: Vec<u64>,
    sent_count: bool,
    result: Option<u64>,
}

impl SpanningTreeCounter {
    /// Construct a node; node 0 is conventionally the root.
    pub fn new(is_root: bool, byz: Option<BaselineAttack>) -> Self {
        SpanningTreeCounter {
            byz,
            is_root,
            joined: false,
            parent: None,
            invite_round: None,
            responses: 0,
            children: Vec::new(),
            child_counts: Vec::new(),
            sent_count: false,
            result: None,
        }
    }

    fn suppressing(&self) -> bool {
        matches!(self.byz, Some(BaselineAttack::Suppress))
    }

    fn subtree_count(&self) -> u64 {
        if matches!(self.byz, Some(BaselineAttack::Inflate)) {
            INFLATED_COUNT
        } else {
            1 + self.child_counts.iter().sum::<u64>()
        }
    }
}

impl Protocol for SpanningTreeCounter {
    type Message = TreeMsg;
    /// The network size as announced by the root.
    type Output = u64;

    fn step(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<TreeMsg>],
        outbox: &mut Outbox<TreeMsg>,
        _rng: &mut ChaCha8Rng,
    ) -> Action<u64> {
        if self.suppressing() {
            // A suppressing Byzantine node never answers anything, which
            // stalls its parent's converge-cast forever.
            return Action::Continue;
        }
        // Root bootstrap.
        if ctx.round == 0 && self.is_root {
            self.joined = true;
            self.invite_round = Some(0);
            outbox.broadcast(ctx.neighbors.iter(), TreeMsg::Invite);
        }
        let mut new_result = None;
        for env in inbox {
            match env.payload {
                TreeMsg::Invite => {
                    if !self.joined {
                        self.joined = true;
                        self.parent = Some(env.from.0);
                        self.invite_round = Some(ctx.round);
                        outbox.send(env.from, TreeMsg::Accept);
                        outbox.broadcast(ctx.neighbors.iter(), TreeMsg::Invite);
                    } else {
                        outbox.send(env.from, TreeMsg::Reject);
                    }
                }
                TreeMsg::Accept => {
                    self.responses += 1;
                    self.children.push(env.from.0);
                }
                TreeMsg::Reject => {
                    self.responses += 1;
                }
                TreeMsg::Count(c) => {
                    self.child_counts.push(c);
                }
                TreeMsg::Result(total) => {
                    if self.result.is_none() {
                        new_result = Some(total);
                    }
                }
            }
        }
        // Converge-cast once all neighbours responded to our invite and all
        // children reported.
        // Every neighbour (the parent included) answers each of our invites
        // with Accept or Reject, so completion means `responses` reaching the
        // neighbour count; a silent Byzantine neighbour therefore stalls us.
        if self.joined
            && !self.sent_count
            && self.invite_round.is_some()
            && self.responses >= ctx.neighbors.len()
            && self.child_counts.len() >= self.children.len()
        {
            self.sent_count = true;
            if self.is_root {
                let total = self.subtree_count();
                self.result = Some(total);
                outbox.broadcast(ctx.neighbors.iter(), TreeMsg::Result(total));
                return Action::Decide(total);
            } else if let Some(parent) = self.parent {
                outbox.send(NodeId(parent), TreeMsg::Count(self.subtree_count()));
            }
        }
        if let Some(total) = new_result {
            self.result = Some(total);
            outbox.broadcast(ctx.neighbors.iter(), TreeMsg::Result(total));
            return Action::Decide(total);
        }
        Action::Continue
    }
}

/// Run the spanning-tree counter with node 0 as root.
pub fn run_spanning_tree_count<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    max_rounds: u64,
    seed: u64,
) -> RunResult<u64> {
    run_spanning_tree_count_faulty(topo, byzantine, attack, max_rounds, seed, None)
}

/// [`run_spanning_tree_count`] with an optional network [`FaultPlan`]
/// installed on the engine.
pub fn run_spanning_tree_count_faulty<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    max_rounds: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
) -> RunResult<u64> {
    run_spanning_tree_count_engine(
        topo,
        byzantine,
        attack,
        max_rounds,
        seed,
        fault_plan,
        EngineKind::Sync,
    )
}

/// [`run_spanning_tree_count_faulty`] with an explicit [`EngineKind`]
/// (classic or sharded; results are byte-identical either way).
pub fn run_spanning_tree_count_engine<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    max_rounds: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
) -> RunResult<u64> {
    run_spanning_tree_count_recorded(
        topo, byzantine, attack, max_rounds, seed, fault_plan, engine, None,
    )
}

/// [`run_spanning_tree_count_engine`] with an optional [`Recorder`]
/// observing the run (observation-only: results are byte-identical either
/// way).
#[allow(clippy::too_many_arguments)]
pub fn run_spanning_tree_count_recorded<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    max_rounds: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
) -> RunResult<u64> {
    run_spanning_tree_count_fleet(
        topo, byzantine, attack, max_rounds, seed, fault_plan, engine, recorder, None,
    )
    .expect("in-process engines are infallible")
}

/// Build the per-node counter states for global node ids `range` (the full
/// run is `0..topo.len()`; shard workers build their assigned chunk).
/// Node 0 is always the root.
pub fn spanning_tree_nodes(
    byzantine: &[bool],
    attack: BaselineAttack,
    range: std::ops::Range<usize>,
) -> Vec<SpanningTreeCounter> {
    range
        .map(|i| SpanningTreeCounter::new(i == 0, if byzantine[i] { Some(attack) } else { None }))
        .collect()
}

/// [`run_spanning_tree_count_recorded`] with an optional remote
/// shard-worker fleet for the distributed engine — the only spanning-tree
/// runner that can fail, and only on remote transports.
#[allow(clippy::too_many_arguments)]
pub fn run_spanning_tree_count_fleet<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    max_rounds: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
    fleet: Option<&RemoteFleet>,
) -> Result<RunResult<u64>, RunError> {
    let nodes = spanning_tree_nodes(byzantine, attack, 0..topo.len());
    let config = EngineConfig {
        max_rounds,
        stop_when_all_decided: true,
    };
    run_with_engine_fleet(
        engine,
        topo,
        nodes,
        byzantine.to_vec(),
        NullAdversary,
        config,
        seed,
        fault_plan,
        recorder,
        fleet,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::SmallWorldNetwork;

    #[test]
    fn counts_exactly_without_faults() {
        let n = 500usize;
        let net = SmallWorldNetwork::generate_seeded(n, 8, 1).unwrap();
        let byz = vec![false; n];
        let result = run_spanning_tree_count(net.h().csr(), &byz, BaselineAttack::None, 400, 2);
        assert!(result.completed);
        assert!(result.outputs.iter().all(|o| *o == Some(n as u64)));
    }

    #[test]
    fn one_inflating_node_corrupts_the_count() {
        let n = 300usize;
        let net = SmallWorldNetwork::generate_seeded(n, 8, 3).unwrap();
        let mut byz = vec![false; n];
        byz[50] = true;
        let result = run_spanning_tree_count(net.h().csr(), &byz, BaselineAttack::Inflate, 400, 4);
        let root_count = result.outputs[0];
        assert!(
            root_count.unwrap_or(0) >= INFLATED_COUNT,
            "the fake subtree count must reach the root: {root_count:?}"
        );
    }

    #[test]
    fn one_suppressing_node_stalls_the_count() {
        let n = 300usize;
        let net = SmallWorldNetwork::generate_seeded(n, 8, 5).unwrap();
        let mut byz = vec![false; n];
        byz[50] = true;
        let result = run_spanning_tree_count(net.h().csr(), &byz, BaselineAttack::Suppress, 200, 6);
        // The root never hears from the silent child's subtree, so the
        // protocol cannot complete.
        assert!(!result.completed);
        assert!(result.outputs[0].is_none());
    }
}
