//! The baseline estimators behind the unified [`Estimator`] interface.
//!
//! Each wrapper adapts one `run_*` baseline to
//! [`byzcount_core::sim::Estimator`], so baselines run through the same
//! [`SimulationBuilder`](byzcount_core::sim::SimulationBuilder), produce the
//! same [`RunReport`](byzcount_core::sim::RunReport)s and batch the same way
//! as the real protocols.

use crate::attack::BaselineAttack;
use crate::{
    exponential_support_nodes, flood_diameter_nodes, geometric_support_nodes,
    run_exponential_support_fleet, run_flood_diameter_fleet, run_geometric_support_fleet,
    run_spanning_tree_count_fleet, spanning_tree_nodes,
};
use byzcount_core::sim::{
    AttackSpec, Estimand, Estimator, RunError, ShardServeConfig, SimContext, SimError, WorkloadRun,
};
use netsim_graph::log2n;
use netsim_runtime::wire::IoStream;
use netsim_runtime::{serve_shard_session, RunResult};

/// Map the spec-layer attack to the baseline crate's enum.
pub fn attack_from_spec(spec: AttackSpec) -> BaselineAttack {
    match spec {
        AttackSpec::None => BaselineAttack::None,
        AttackSpec::Inflate => BaselineAttack::Inflate,
        AttackSpec::Suppress => BaselineAttack::Suppress,
    }
}

/// Default flooding horizon: comfortably above expander diameters.
fn default_ttl(n: usize) -> u64 {
    (3.0 * log2n(n)).ceil() as u64 + 5
}

/// TTL precedence: explicit workload field, then the spec's round cap, then
/// the derived default.
fn resolve_ttl(explicit: Option<u64>, ctx: &SimContext<'_>, derived: u64) -> u64 {
    explicit
        .or(ctx.max_rounds.map(|m| m.saturating_sub(4).max(1)))
        .unwrap_or(derived)
}

/// Map a worker-side wire failure to the sim error space.
fn serve_error(start: usize, end: usize, e: netsim_runtime::wire::WireError) -> SimError {
    SimError::Engine(RunError::Fleet(format!(
        "shard session ({start}..{end}): {e}"
    )))
}

fn workload_run<O: Copy>(
    estimand: Estimand,
    result: RunResult<O>,
    to_f64: impl Fn(O) -> f64,
) -> WorkloadRun {
    WorkloadRun {
        estimand,
        per_node: result.outputs.iter().map(|o| o.map(&to_f64)).collect(),
        crashed: result.crashed,
        metrics: result.metrics,
        completed: result.completed,
        counting: None,
    }
}

/// Geometric support estimation (estimates `log₂ n`).
#[derive(Clone, Copy, Debug)]
pub struct GeometricSupportWorkload {
    /// Flooding horizon (`None` = derive from `n`).
    pub ttl: Option<u64>,
    /// Byzantine behaviour.
    pub attack: AttackSpec,
}

impl Estimator for GeometricSupportWorkload {
    fn name(&self) -> &'static str {
        "geometric-support"
    }

    fn estimand(&self) -> Estimand {
        Estimand::LogN
    }

    fn run(&self, ctx: &SimContext<'_>) -> Result<WorkloadRun, SimError> {
        let ttl = resolve_ttl(self.ttl, ctx, default_ttl(ctx.topology.len()));
        let result = run_geometric_support_fleet(
            ctx.topology,
            ctx.byzantine,
            attack_from_spec(self.attack),
            ttl,
            ctx.seed,
            ctx.build_fault_plan(),
            ctx.engine,
            ctx.recorder,
            ctx.fleet,
        )?;
        Ok(workload_run(Estimand::LogN, result, |v| v as f64))
    }

    fn serve_shard(
        &self,
        ctx: &SimContext<'_>,
        cfg: &ShardServeConfig,
        end: usize,
        chan: &mut IoStream,
    ) -> Result<(), SimError> {
        let ttl = resolve_ttl(self.ttl, ctx, default_ttl(ctx.topology.len()));
        let nodes = geometric_support_nodes(
            ctx.byzantine,
            attack_from_spec(self.attack),
            ttl,
            cfg.start..end,
        );
        let byzantine = ctx.byzantine[cfg.start..end].to_vec();
        serve_shard_session(ctx.topology, nodes, byzantine, cfg, chan)
            .map_err(|e| serve_error(cfg.start, end, e))
    }
}

/// Exponential support estimation (estimates `n`).
#[derive(Clone, Copy, Debug)]
pub struct ExponentialSupportWorkload {
    /// Flooding horizon (`None` = derive from `n`).
    pub ttl: Option<u64>,
    /// Byzantine behaviour.
    pub attack: AttackSpec,
}

impl Estimator for ExponentialSupportWorkload {
    fn name(&self) -> &'static str {
        "exponential-support"
    }

    fn estimand(&self) -> Estimand {
        Estimand::N
    }

    fn run(&self, ctx: &SimContext<'_>) -> Result<WorkloadRun, SimError> {
        let ttl = resolve_ttl(self.ttl, ctx, default_ttl(ctx.topology.len()));
        let result = run_exponential_support_fleet(
            ctx.topology,
            ctx.byzantine,
            attack_from_spec(self.attack),
            ttl,
            ctx.seed,
            ctx.build_fault_plan(),
            ctx.engine,
            ctx.recorder,
            ctx.fleet,
        )?;
        Ok(workload_run(Estimand::N, result, |v| v))
    }

    fn serve_shard(
        &self,
        ctx: &SimContext<'_>,
        cfg: &ShardServeConfig,
        end: usize,
        chan: &mut IoStream,
    ) -> Result<(), SimError> {
        let ttl = resolve_ttl(self.ttl, ctx, default_ttl(ctx.topology.len()));
        let nodes = exponential_support_nodes(
            ctx.byzantine,
            attack_from_spec(self.attack),
            ttl,
            cfg.start..end,
        );
        let byzantine = ctx.byzantine[cfg.start..end].to_vec();
        serve_shard_session(ctx.topology, nodes, byzantine, cfg, chan)
            .map_err(|e| serve_error(cfg.start, end, e))
    }
}

/// BFS spanning tree + converge-cast (estimates `n` exactly when honest).
#[derive(Clone, Copy, Debug)]
pub struct SpanningTreeWorkload {
    /// Round cap (`None` = derive from `n`).
    pub max_rounds: Option<u64>,
    /// Byzantine behaviour.
    pub attack: AttackSpec,
}

impl Estimator for SpanningTreeWorkload {
    fn name(&self) -> &'static str {
        "spanning-tree"
    }

    fn estimand(&self) -> Estimand {
        Estimand::N
    }

    fn run(&self, ctx: &SimContext<'_>) -> Result<WorkloadRun, SimError> {
        let n = ctx.topology.len();
        // Converge-cast needs roughly two traversals plus slack; trees and
        // other high-diameter graphs get a cap linear in n.
        let derived = (4 * default_ttl(n)).max(2 * n as u64 + 8);
        let max_rounds = self.max_rounds.or(ctx.max_rounds).unwrap_or(derived);
        let result = run_spanning_tree_count_fleet(
            ctx.topology,
            ctx.byzantine,
            attack_from_spec(self.attack),
            max_rounds,
            ctx.seed,
            ctx.build_fault_plan(),
            ctx.engine,
            ctx.recorder,
            ctx.fleet,
        )?;
        Ok(workload_run(Estimand::N, result, |v| v as f64))
    }

    fn serve_shard(
        &self,
        ctx: &SimContext<'_>,
        cfg: &ShardServeConfig,
        end: usize,
        chan: &mut IoStream,
    ) -> Result<(), SimError> {
        let nodes =
            spanning_tree_nodes(ctx.byzantine, attack_from_spec(self.attack), cfg.start..end);
        let byzantine = ctx.byzantine[cfg.start..end].to_vec();
        serve_shard_session(ctx.topology, nodes, byzantine, cfg, chan)
            .map_err(|e| serve_error(cfg.start, end, e))
    }
}

/// Leader flood; first-arrival rounds proxy the diameter.
#[derive(Clone, Copy, Debug)]
pub struct FloodDiameterWorkload {
    /// Flooding horizon (`None` = derive from `n`).
    pub ttl: Option<u64>,
    /// Byzantine behaviour.
    pub attack: AttackSpec,
}

impl Estimator for FloodDiameterWorkload {
    fn name(&self) -> &'static str {
        "flood-diameter"
    }

    fn estimand(&self) -> Estimand {
        Estimand::Diameter
    }

    fn run(&self, ctx: &SimContext<'_>) -> Result<WorkloadRun, SimError> {
        let n = ctx.topology.len();
        let ttl = resolve_ttl(self.ttl, ctx, default_ttl(n).max(n as u64));
        let result = run_flood_diameter_fleet(
            ctx.topology,
            ctx.byzantine,
            attack_from_spec(self.attack),
            ttl,
            ctx.seed,
            ctx.build_fault_plan(),
            ctx.engine,
            ctx.recorder,
            ctx.fleet,
        )?;
        Ok(workload_run(Estimand::Diameter, result, |v| v as f64))
    }

    fn serve_shard(
        &self,
        ctx: &SimContext<'_>,
        cfg: &ShardServeConfig,
        end: usize,
        chan: &mut IoStream,
    ) -> Result<(), SimError> {
        let n = ctx.topology.len();
        let ttl = resolve_ttl(self.ttl, ctx, default_ttl(n).max(n as u64));
        let nodes = flood_diameter_nodes(
            ctx.byzantine,
            attack_from_spec(self.attack),
            ttl,
            cfg.start..end,
        );
        let byzantine = ctx.byzantine[cfg.start..end].to_vec();
        serve_shard_session(ctx.topology, nodes, byzantine, cfg, chan)
            .map_err(|e| serve_error(cfg.start, end, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzcount_core::sim::TopologySpec;

    fn ctx_over<'a>(
        topo: &'a byzcount_core::sim::BuiltTopology,
        byz: &'a [bool],
    ) -> SimContext<'a> {
        SimContext {
            topology: topo,
            byzantine: byz,
            seed: 5,
            max_rounds: None,
            fault: &byzcount_core::sim::FaultSpec::None,
            fault_seed: 0,
            engine: byzcount_core::sim::EngineKind::Sync,
            recorder: None,
            fleet: None,
        }
    }

    #[test]
    fn all_four_baselines_run_via_the_estimator_trait() {
        let topo = TopologySpec::SmallWorldH { n: 200, d: 6 }.build(2).unwrap();
        let byz = vec![false; 200];
        let ctx = ctx_over(&topo, &byz);
        let estimators: Vec<Box<dyn Estimator>> = vec![
            Box::new(GeometricSupportWorkload {
                ttl: None,
                attack: AttackSpec::None,
            }),
            Box::new(ExponentialSupportWorkload {
                ttl: None,
                attack: AttackSpec::None,
            }),
            Box::new(SpanningTreeWorkload {
                max_rounds: None,
                attack: AttackSpec::None,
            }),
            Box::new(FloodDiameterWorkload {
                ttl: None,
                attack: AttackSpec::None,
            }),
        ];
        for est in estimators {
            let run = est
                .run(&ctx)
                .unwrap_or_else(|e| panic!("{}: {e}", est.name()));
            assert!(run.completed, "{} did not complete", est.name());
            assert_eq!(run.per_node.len(), 200, "{}", est.name());
            assert!(run.counting.is_none());
        }
    }

    #[test]
    fn spanning_tree_counts_exactly_when_honest() {
        let topo = TopologySpec::SmallWorldH { n: 300, d: 6 }.build(4).unwrap();
        let byz = vec![false; 300];
        let ctx = ctx_over(&topo, &byz);
        let run = SpanningTreeWorkload {
            max_rounds: None,
            attack: AttackSpec::None,
        }
        .run(&ctx)
        .unwrap();
        // The root (node 0) learns the exact count.
        assert_eq!(run.per_node[0], Some(300.0));
    }

    #[test]
    fn inflation_attack_shows_up_in_the_estimates() {
        let topo = TopologySpec::SmallWorldH { n: 200, d: 6 }.build(2).unwrap();
        let mut byz = vec![false; 200];
        byz[100] = true;
        let ctx = ctx_over(&topo, &byz);
        let clean = GeometricSupportWorkload {
            ttl: None,
            attack: AttackSpec::None,
        }
        .run(&ctx_over(&topo, &[false; 200]))
        .unwrap();
        let attacked = GeometricSupportWorkload {
            ttl: None,
            attack: AttackSpec::Inflate,
        }
        .run(&ctx)
        .unwrap();
        let max = |run: &WorkloadRun| {
            run.per_node
                .iter()
                .flatten()
                .fold(f64::MIN, |a, &b| a.max(b))
        };
        assert!(max(&attacked) > max(&clean), "inflated color must dominate");
    }
}
