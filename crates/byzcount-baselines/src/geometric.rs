//! The geometric-distribution support-estimation baseline (Section 1.2).
//!
//! Every node tosses a fair coin until heads and floods the maximum count
//! through the network for a fixed number of rounds (at least the
//! diameter); the maximum concentrates around `log₂ n`.  Without Byzantine
//! nodes this is a clean constant-factor estimator of `log n`; with even a
//! single Byzantine node it fails — the node can fake an enormous color
//! (making the network look huge) or refuse to forward the true maximum.

use crate::attack::BaselineAttack;
use byzcount_core::color::{sample_color, Color};
use netsim_runtime::{
    run_with_engine_fleet, Action, EngineConfig, EngineKind, Envelope, FaultPlan, MessageSize,
    NodeContext, NullAdversary, Outbox, Protocol, Recorder, RemoteFleet, RunError, RunResult,
    SizedMessage, Topology,
};
use netsim_wire::{Reader, Wire, WireError};
use rand_chacha::ChaCha8Rng;

/// The color value a Byzantine "inflate" node claims.
pub const INFLATED_COLOR: Color = 60;

/// Message: a color value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeoMsg(pub Color);

impl MessageSize for GeoMsg {
    fn message_size(&self) -> SizedMessage {
        SizedMessage::new(0, 32)
    }
}

/// Canonical binary encoding: the bare color value.
impl Wire for GeoMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GeoMsg(Color::decode(r)?))
    }
}

/// Per-node state of the geometric support estimator.
#[derive(Clone, Debug)]
pub struct GeometricSupportEstimator {
    /// Rounds to keep flooding before deciding (should exceed the diameter).
    ttl: u64,
    /// `None` = honest node, `Some(attack)` = Byzantine node behaviour.
    byz: Option<BaselineAttack>,
    best: Color,
}

impl GeometricSupportEstimator {
    /// An honest node.
    pub fn honest(ttl: u64) -> Self {
        GeometricSupportEstimator {
            ttl,
            byz: None,
            best: 0,
        }
    }

    /// A Byzantine node with the given behaviour.
    pub fn byzantine(ttl: u64, attack: BaselineAttack) -> Self {
        GeometricSupportEstimator {
            ttl,
            byz: Some(attack),
            best: 0,
        }
    }
}

impl Protocol for GeometricSupportEstimator {
    type Message = GeoMsg;
    /// The decided estimate of `log₂ n` (the maximum color seen).
    type Output = u32;

    fn step(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<GeoMsg>],
        outbox: &mut Outbox<GeoMsg>,
        rng: &mut ChaCha8Rng,
    ) -> Action<u32> {
        if ctx.round == 0 {
            match self.byz {
                None | Some(BaselineAttack::None) => {
                    self.best = sample_color(rng);
                    outbox.broadcast(ctx.neighbors.iter(), GeoMsg(self.best));
                }
                Some(BaselineAttack::Inflate) => {
                    self.best = INFLATED_COLOR;
                    outbox.broadcast(ctx.neighbors.iter(), GeoMsg(INFLATED_COLOR));
                }
                Some(BaselineAttack::Suppress) => {}
            }
            return Action::Continue;
        }
        let incoming_max = inbox.iter().map(|e| e.payload.0).max().unwrap_or(0);
        if incoming_max > self.best {
            self.best = incoming_max;
            // Suppressing Byzantine nodes swallow the maximum instead of
            // forwarding it.
            if !matches!(self.byz, Some(BaselineAttack::Suppress)) {
                outbox.broadcast(ctx.neighbors.iter(), GeoMsg(self.best));
            }
        }
        if ctx.round >= self.ttl {
            Action::Decide(self.best)
        } else {
            Action::Continue
        }
    }
}

/// Run the estimator over a topology.
///
/// `byzantine[i]` marks node `i` as Byzantine with behaviour `attack`;
/// `ttl` is the flooding horizon (use ≥ the diameter; `3·log₂ n + 5` is a
/// safe choice on expanders).
pub fn run_geometric_support<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
) -> RunResult<u32> {
    run_geometric_support_faulty(topo, byzantine, attack, ttl, seed, None)
}

/// [`run_geometric_support`] with an optional network [`FaultPlan`]
/// installed on the engine.
pub fn run_geometric_support_faulty<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
) -> RunResult<u32> {
    run_geometric_support_engine(
        topo,
        byzantine,
        attack,
        ttl,
        seed,
        fault_plan,
        EngineKind::Sync,
    )
}

/// [`run_geometric_support_faulty`] with an explicit [`EngineKind`]
/// (classic or sharded; results are byte-identical either way).
pub fn run_geometric_support_engine<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
) -> RunResult<u32> {
    run_geometric_support_recorded(topo, byzantine, attack, ttl, seed, fault_plan, engine, None)
}

/// [`run_geometric_support_engine`] with an optional [`Recorder`] observing
/// the run (observation-only: results are byte-identical either way).
#[allow(clippy::too_many_arguments)]
pub fn run_geometric_support_recorded<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
) -> RunResult<u32> {
    run_geometric_support_fleet(
        topo, byzantine, attack, ttl, seed, fault_plan, engine, recorder, None,
    )
    .expect("in-process engines are infallible")
}

/// Build the per-node estimator states for global node ids `range` (the
/// full run is `0..topo.len()`; shard workers build their assigned chunk).
pub fn geometric_support_nodes(
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    range: std::ops::Range<usize>,
) -> Vec<GeometricSupportEstimator> {
    range
        .map(|i| {
            if byzantine[i] {
                GeometricSupportEstimator::byzantine(ttl, attack)
            } else {
                GeometricSupportEstimator::honest(ttl)
            }
        })
        .collect()
}

/// [`run_geometric_support_recorded`] with an optional remote shard-worker
/// fleet for the distributed engine — the only geometric runner that can
/// fail, and only on remote transports.
#[allow(clippy::too_many_arguments)]
pub fn run_geometric_support_fleet<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
    fleet: Option<&RemoteFleet>,
) -> Result<RunResult<u32>, RunError> {
    let nodes = geometric_support_nodes(byzantine, attack, ttl, 0..topo.len());
    let config = EngineConfig {
        max_rounds: ttl + 4,
        stop_when_all_decided: true,
    };
    run_with_engine_fleet(
        engine,
        topo,
        nodes,
        byzantine.to_vec(),
        NullAdversary,
        config,
        seed,
        fault_plan,
        recorder,
        fleet,
    )
}

/// Honest nodes' decided estimates.
pub fn honest_estimates(result: &RunResult<u32>, byzantine: &[bool]) -> Vec<u32> {
    result
        .outputs
        .iter()
        .enumerate()
        .filter(|(i, o)| !byzantine[*i] && o.is_some())
        .map(|(_, o)| o.unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::SmallWorldNetwork;

    fn ttl_for(n: usize) -> u64 {
        (3.0 * (n as f64).log2()).ceil() as u64 + 5
    }

    #[test]
    fn honest_run_estimates_log_n() {
        let net = SmallWorldNetwork::generate_seeded(1024, 8, 1).unwrap();
        let byz = vec![false; 1024];
        let result =
            run_geometric_support(net.h().csr(), &byz, BaselineAttack::None, ttl_for(1024), 3);
        assert!(result.completed);
        let estimates = honest_estimates(&result, &byz);
        assert_eq!(estimates.len(), 1024);
        // Everyone agrees on the flooded maximum …
        assert!(estimates.iter().all(|&e| e == estimates[0]));
        // … and it is a constant-factor estimate of log2(n) = 10.
        let est = estimates[0] as f64;
        assert!(
            (5.0..=25.0).contains(&est),
            "estimate {est} not within [0.5, 2.5]·log n"
        );
    }

    #[test]
    fn single_inflating_byzantine_node_destroys_the_estimate() {
        let net = SmallWorldNetwork::generate_seeded(1024, 8, 2).unwrap();
        let mut byz = vec![false; 1024];
        byz[17] = true;
        let result = run_geometric_support(
            net.h().csr(),
            &byz,
            BaselineAttack::Inflate,
            ttl_for(1024),
            4,
        );
        let estimates = honest_estimates(&result, &byz);
        // Every honest node now believes the network has ~2^60 nodes.
        assert!(estimates.iter().all(|&e| e == INFLATED_COLOR));
    }

    #[test]
    fn suppressing_byzantine_node_cuts_off_part_of_the_network() {
        // "Stop the correct maximum value from spreading": on a path graph a
        // single suppressing node at position 1 isolates node 0 from the
        // rest, so node 0's estimate collapses to its own coin flips while
        // the other side still aggregates ~log n.
        use netsim_graph::Csr;
        let n = 64usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let path = Csr::from_undirected_edges(n, &edges).unwrap();
        let mut byz = vec![false; n];
        byz[1] = true;
        let result = run_geometric_support(&path, &byz, BaselineAttack::Suppress, 2 * n as u64, 11);
        let isolated = result.outputs[0].unwrap();
        let far_side_max = (2..n).map(|i| result.outputs[i].unwrap()).max().unwrap();
        assert!(
            isolated < far_side_max,
            "node 0 ({isolated}) should see a smaller maximum than the far side ({far_side_max})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let net = SmallWorldNetwork::generate_seeded(256, 8, 4).unwrap();
        let byz = vec![false; 256];
        let a = run_geometric_support(net.h().csr(), &byz, BaselineAttack::None, 40, 9);
        let b = run_geometric_support(net.h().csr(), &byz, BaselineAttack::None, 40, 9);
        assert_eq!(a.outputs, b.outputs);
    }
}
