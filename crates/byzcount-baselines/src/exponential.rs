//! Exponential-distribution support estimation ([6, 4] in the paper).
//!
//! Every node draws `K` independent `Exp(1)` variables; the network floods
//! the component-wise minimum.  The minimum of `n` unit exponentials is
//! `Exp(n)`, so `n̂ = (K − 1) / Σ_j W_j` is an (almost unbiased) estimate of
//! `n`.  A Byzantine node that reports zeros drives `n̂` to infinity; a
//! suppressing node biases it downward.

use crate::attack::BaselineAttack;
use netsim_runtime::{
    run_with_engine_fleet, Action, EngineConfig, EngineKind, Envelope, FaultPlan, MessageSize,
    NodeContext, NullAdversary, Outbox, Protocol, Recorder, RemoteFleet, RunError, RunResult,
    SizedMessage, Topology,
};
use netsim_wire::{Reader, Wire, WireError};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Number of independent repetitions carried in each message.
pub const REPETITIONS: usize = 8;

/// Message: the component-wise minima known to the sender.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpMsg(pub Vec<f64>);

impl MessageSize for ExpMsg {
    fn message_size(&self) -> SizedMessage {
        SizedMessage::new(0, (self.0.len() * 64) as u32)
    }
}

/// Canonical binary encoding: the minima vector, with each `f64` as its
/// IEEE-754 bit pattern (exact — parity across engines needs every bit).
impl Wire for ExpMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ExpMsg(Vec::decode(r)?))
    }
}

/// Per-node state of the exponential support estimator.
#[derive(Clone, Debug)]
pub struct ExponentialSupportEstimator {
    ttl: u64,
    byz: Option<BaselineAttack>,
    mins: Vec<f64>,
}

impl ExponentialSupportEstimator {
    /// An honest node.
    pub fn honest(ttl: u64) -> Self {
        ExponentialSupportEstimator {
            ttl,
            byz: None,
            mins: vec![f64::INFINITY; REPETITIONS],
        }
    }

    /// A Byzantine node with the given behaviour.
    pub fn byzantine(ttl: u64, attack: BaselineAttack) -> Self {
        ExponentialSupportEstimator {
            ttl,
            byz: Some(attack),
            mins: vec![f64::INFINITY; REPETITIONS],
        }
    }

    /// Convert accumulated minima into an estimate of `n`.
    fn estimate(&self) -> f64 {
        let sum: f64 = self.mins.iter().copied().filter(|v| v.is_finite()).sum();
        if sum <= 0.0 {
            f64::INFINITY
        } else {
            (REPETITIONS as f64 - 1.0) / sum
        }
    }

    fn merge(&mut self, other: &[f64]) -> bool {
        let mut changed = false;
        for (m, &o) in self.mins.iter_mut().zip(other.iter()) {
            if o < *m {
                *m = o;
                changed = true;
            }
        }
        changed
    }
}

impl Protocol for ExponentialSupportEstimator {
    type Message = ExpMsg;
    /// The decided estimate of `n`.
    type Output = f64;

    fn step(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &[Envelope<ExpMsg>],
        outbox: &mut Outbox<ExpMsg>,
        rng: &mut ChaCha8Rng,
    ) -> Action<f64> {
        if ctx.round == 0 {
            match self.byz {
                None | Some(BaselineAttack::None) => {
                    for m in self.mins.iter_mut() {
                        // Exp(1) via inverse CDF.
                        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        *m = -u.ln();
                    }
                }
                Some(BaselineAttack::Inflate) => {
                    // Claim (near-)zero draws: the minimum of anything with 0
                    // is 0, so every honest node's n̂ explodes.
                    for m in self.mins.iter_mut() {
                        *m = 1e-12;
                    }
                }
                Some(BaselineAttack::Suppress) => {
                    self.mins = vec![f64::INFINITY; REPETITIONS];
                    return Action::Continue;
                }
            }
            outbox.broadcast(ctx.neighbors.iter(), ExpMsg(self.mins.clone()));
            return Action::Continue;
        }
        let mut changed = false;
        for env in inbox {
            changed |= self.merge(&env.payload.0);
        }
        if changed && !matches!(self.byz, Some(BaselineAttack::Suppress)) {
            outbox.broadcast(ctx.neighbors.iter(), ExpMsg(self.mins.clone()));
        }
        if ctx.round >= self.ttl {
            Action::Decide(self.estimate())
        } else {
            Action::Continue
        }
    }
}

/// Run the estimator over a topology.
pub fn run_exponential_support<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
) -> RunResult<f64> {
    run_exponential_support_faulty(topo, byzantine, attack, ttl, seed, None)
}

/// [`run_exponential_support`] with an optional network [`FaultPlan`]
/// installed on the engine.
pub fn run_exponential_support_faulty<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
) -> RunResult<f64> {
    run_exponential_support_engine(
        topo,
        byzantine,
        attack,
        ttl,
        seed,
        fault_plan,
        EngineKind::Sync,
    )
}

/// [`run_exponential_support_faulty`] with an explicit [`EngineKind`]
/// (classic or sharded; results are byte-identical either way).
pub fn run_exponential_support_engine<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
) -> RunResult<f64> {
    run_exponential_support_recorded(topo, byzantine, attack, ttl, seed, fault_plan, engine, None)
}

/// [`run_exponential_support_engine`] with an optional [`Recorder`]
/// observing the run (observation-only: results are byte-identical either
/// way).
#[allow(clippy::too_many_arguments)]
pub fn run_exponential_support_recorded<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
) -> RunResult<f64> {
    run_exponential_support_fleet(
        topo, byzantine, attack, ttl, seed, fault_plan, engine, recorder, None,
    )
    .expect("in-process engines are infallible")
}

/// Build the per-node estimator states for global node ids `range` (the
/// full run is `0..topo.len()`; shard workers build their assigned chunk).
pub fn exponential_support_nodes(
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    range: std::ops::Range<usize>,
) -> Vec<ExponentialSupportEstimator> {
    range
        .map(|i| {
            if byzantine[i] {
                ExponentialSupportEstimator::byzantine(ttl, attack)
            } else {
                ExponentialSupportEstimator::honest(ttl)
            }
        })
        .collect()
}

/// [`run_exponential_support_recorded`] with an optional remote
/// shard-worker fleet for the distributed engine — the only exponential
/// runner that can fail, and only on remote transports.
#[allow(clippy::too_many_arguments)]
pub fn run_exponential_support_fleet<T: Topology>(
    topo: &T,
    byzantine: &[bool],
    attack: BaselineAttack,
    ttl: u64,
    seed: u64,
    fault_plan: Option<Box<dyn FaultPlan>>,
    engine: EngineKind,
    recorder: Option<&dyn Recorder>,
    fleet: Option<&RemoteFleet>,
) -> Result<RunResult<f64>, RunError> {
    let nodes = exponential_support_nodes(byzantine, attack, ttl, 0..topo.len());
    let config = EngineConfig {
        max_rounds: ttl + 4,
        stop_when_all_decided: true,
    };
    run_with_engine_fleet(
        engine,
        topo,
        nodes,
        byzantine.to_vec(),
        NullAdversary,
        config,
        seed,
        fault_plan,
        recorder,
        fleet,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::SmallWorldNetwork;

    fn ttl_for(n: usize) -> u64 {
        (3.0 * (n as f64).log2()).ceil() as u64 + 5
    }

    #[test]
    fn honest_run_estimates_n_within_a_small_factor() {
        let n = 2048usize;
        let net = SmallWorldNetwork::generate_seeded(n, 8, 1).unwrap();
        let byz = vec![false; n];
        let result =
            run_exponential_support(net.h().csr(), &byz, BaselineAttack::None, ttl_for(n), 3);
        assert!(result.completed);
        let est = result.outputs[0].unwrap();
        // With K = 8 repetitions the estimator is noisy but within a factor
        // ~3 of the truth essentially always.
        assert!(
            est > n as f64 / 3.0 && est < n as f64 * 3.0,
            "estimate {est} too far from n = {n}"
        );
        // All honest nodes converge to the same minima, hence same estimate.
        assert!(result.outputs.iter().all(|o| o.unwrap() == est));
    }

    #[test]
    fn single_inflating_byzantine_node_explodes_the_estimate() {
        let n = 1024usize;
        let net = SmallWorldNetwork::generate_seeded(n, 8, 2).unwrap();
        let mut byz = vec![false; n];
        byz[100] = true;
        let result =
            run_exponential_support(net.h().csr(), &byz, BaselineAttack::Inflate, ttl_for(n), 4);
        let honest_est = result
            .outputs
            .iter()
            .enumerate()
            .filter(|(i, _)| !byz[*i])
            .map(|(_, o)| o.unwrap())
            .collect::<Vec<_>>();
        assert!(
            honest_est.iter().all(|&e| e > 100.0 * n as f64),
            "a single zero-claiming node must make n̂ explode"
        );
    }

    #[test]
    fn estimator_math_is_sane() {
        let node = ExponentialSupportEstimator {
            ttl: 1,
            byz: None,
            mins: vec![0.001; REPETITIONS],
        };
        let est = node.estimate();
        assert!((est - (REPETITIONS as f64 - 1.0) / (0.001 * REPETITIONS as f64)).abs() < 1e-9);
        let empty = ExponentialSupportEstimator::honest(1);
        assert!(
            empty.estimate().is_infinite() || empty.estimate().is_nan() || empty.estimate() > 0.0
        );
    }
}
