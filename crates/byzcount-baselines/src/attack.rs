//! Minimal Byzantine behaviours against the baseline estimators.
//!
//! The paper's Section 1.2 argument is qualitative: "Byzantine nodes can
//! fake the maximum value or can stop the correct maximum value from
//! spreading".  [`BaselineAttack`] implements exactly those two behaviours
//! generically for any baseline whose messages carry an aggregatable value,
//! so experiment E4 can show the baselines collapsing under a *single*
//! Byzantine node.

use serde::{Deserialize, Serialize};

/// How Byzantine nodes behave against a baseline estimator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BaselineAttack {
    /// Byzantine nodes follow the baseline protocol (control).
    #[default]
    None,
    /// Byzantine nodes report/forward an extreme value that drags the
    /// aggregate as far as possible (a huge color for max-aggregation, a
    /// near-zero exponential for min-aggregation, a huge subtree count for
    /// the converge-cast).
    Inflate,
    /// Byzantine nodes drop every message they should have forwarded.
    Suppress,
}

impl BaselineAttack {
    /// All attack modes, in presentation order for tables.
    pub const ALL: [BaselineAttack; 3] = [
        BaselineAttack::None,
        BaselineAttack::Inflate,
        BaselineAttack::Suppress,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineAttack::None => "honest",
            BaselineAttack::Inflate => "inflate",
            BaselineAttack::Suppress => "suppress",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            BaselineAttack::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(BaselineAttack::default(), BaselineAttack::None);
    }
}
