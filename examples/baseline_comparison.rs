//! The paper's motivation (Section 1.2): the naive support-estimation
//! baselines are accurate without faults and collapse under a single
//! Byzantine node, while Algorithm 2 keeps working at the full budget.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use byzcount::prelude::*;

fn main() {
    let n = 2048;
    let net = SmallWorldNetwork::generate_seeded(n, 6, 11).expect("network");
    let ttl = (3.0 * (n as f64).log2()).ceil() as u64 + 5;

    // 1. Geometric support estimation, fault-free.
    let honest = vec![false; n];
    let run = run_geometric_support(net.h().csr(), &honest, BaselineAttack::None, ttl, 1);
    let clean_estimate = run.outputs[0].unwrap();
    println!("geometric baseline, no faults   : estimate of log2 n = {clean_estimate} (truth {:.1})", (n as f64).log2());

    // 2. Same baseline, ONE Byzantine node faking a huge color.
    let mut one_byz = vec![false; n];
    one_byz[n / 2] = true;
    let run = run_geometric_support(net.h().csr(), &one_byz, BaselineAttack::Inflate, ttl, 1);
    let attacked_estimate = run.outputs[0].unwrap();
    println!("geometric baseline, 1 Byzantine : estimate of log2 n = {attacked_estimate}  ← destroyed");

    // 3. Algorithm 2 at the full Byzantine budget with the same attack idea.
    let delta = 0.6;
    let params = ProtocolParams::for_network_default_expansion(&net, delta, 0.1);
    let placement = Placement::random_budget(n, delta, 3);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
    let adversary = ColorInflationAdversary::new(knowledge, InjectionTiming::LastStep);
    let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 5);
    let eval = outcome.evaluate();
    println!(
        "Algorithm 2, {} Byzantine nodes : {:.1}% of honest nodes hold a constant-factor estimate (mean phase {:.1}, reference {:.1})",
        placement.count(),
        100.0 * eval.good_fraction_of_honest,
        eval.mean_estimate,
        eval.reference_phase,
    );
}
