//! The paper's motivation (Section 1.2): the naive support-estimation
//! baselines are accurate without faults and collapse under a single
//! Byzantine node, while Algorithm 2 keeps working at the full budget.
//! Every scenario — baseline or protocol — is the same builder call with a
//! different workload.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use byzcount::prelude::*;

fn baseline(n: usize, count: usize, attack: AttackSpec) -> RunReport {
    Simulation::builder()
        .topology(TopologySpec::SmallWorldH { n, d: 6 })
        .workload(WorkloadSpec::GeometricSupport { ttl: None, attack })
        .placement(PlacementSpec::Random { count })
        .seed(11)
        .build()
        .expect("spec")
        .run()
        .expect("run")
}

fn main() {
    let n = 2048;

    // 1. Geometric support estimation, fault-free.
    let clean = baseline(n, 0, AttackSpec::None);
    println!(
        "geometric baseline, no faults   : estimate of log2 n = {:.1} (truth {:.1})",
        clean.estimate.mean,
        clean.truth.unwrap()
    );

    // 2. Same baseline, ONE Byzantine node faking a huge color.
    let attacked = baseline(n, 1, AttackSpec::Inflate);
    println!(
        "geometric baseline, 1 Byzantine : estimate of log2 n = {:.1}  ← destroyed",
        attacked.estimate.mean
    );

    // 3. Algorithm 2 at the full Byzantine budget with the same attack idea.
    let delta = 0.6;
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n, d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta })
        .adversary(AdversarySpec::ColorInflation {
            timing: TimingSpec::LastStep,
        })
        .derived_params(delta, 0.1)
        .seed(5)
        .build()
        .expect("spec")
        .run()
        .expect("run");
    let eval = report.counting.expect("counting workload").eval_factor2;
    println!(
        "Algorithm 2, {} Byzantine nodes : {:.1}% of honest nodes hold a constant-factor \
         estimate (mean phase {:.1}, reference {:.1})",
        report.byzantine_count,
        100.0 * eval.good_fraction_of_honest,
        eval.mean_estimate,
        eval.reference_phase,
    );
}
