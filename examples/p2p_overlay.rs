//! The paper's motivating scenario: a peer-to-peer overlay that needs a size
//! estimate as a *preprocessing step* for Byzantine agreement / leader
//! election, which all assume knowledge of (an estimate of) n.
//!
//! We simulate an overlay operator who (a) estimates log n with Algorithm 2
//! under attack, (b) derives the protocol parameters that downstream
//! Byzantine-agreement machinery would need (sample sizes, committee sizes),
//! and (c) shows how far off they would be if the naive estimator had been
//! trusted instead.  Both measurements go through the `Simulation` builder.
//!
//! Run with: `cargo run --release --example p2p_overlay`

use byzcount::prelude::*;

fn main() {
    let n = 4096; // the overlay's true (unknown to peers) size
    let delta = 0.6;

    // Step 1: Byzantine counting as preprocessing.
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n, d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta })
        .adversary(AdversarySpec::Combined)
        .derived_params(delta, 0.1)
        .seed(31)
        .build()
        .expect("spec")
        .run()
        .expect("run");
    println!(
        "P2P overlay with {} peers, {} of them Byzantine",
        n, report.byzantine_count
    );

    let eval = report.counting.expect("counting workload").eval_factor2;
    let log_estimate = eval.mean_estimate; // decided phase ≈ c · log n
                                           // Derived absolute size: the size of a tree-like ball of that radius
                                           // (d·(d−1)^{L−1}, what the decided phase "means" in node counts).
    let d = 6f64;
    let n_estimate = d * (d - 1f64).powf(log_estimate.round() - 1.0);
    println!(
        "Algorithm 2: {:.1}% honest peers agree on phase ≈ {:.1} → n̂ ≈ {:.0} (truth {})",
        100.0 * eval.good_fraction_of_honest,
        log_estimate,
        n_estimate,
        n
    );

    // Step 2: derive downstream parameters (as in King et al. style
    // committee-based agreement: committee size Θ(log n), sample lists
    // Θ(n^{1/3}) as in Brahms).
    let committee = (log_estimate.max(1.0) * 3.0).ceil() as usize;
    let sample_list = n_estimate.powf(1.0 / 3.0).ceil() as usize;
    println!("  → agreement committee size Θ(log n): {committee}");
    println!("  → Brahms-style sample list Θ(n^(1/3)): {sample_list}");

    // Step 3: what the naive estimator would have told us under one attacker.
    let naive = Simulation::builder()
        .topology(TopologySpec::SmallWorldH { n, d: 6 })
        .workload(WorkloadSpec::GeometricSupport {
            ttl: None,
            attack: AttackSpec::Inflate,
        })
        .placement(PlacementSpec::Random { count: 1 })
        .seed(3)
        .build()
        .expect("spec")
        .run()
        .expect("run");
    let naive_log = naive.estimate.mean;
    let naive_n = 2f64.powf(naive_log);
    println!(
        "naive baseline under 1 attacker: log2 n̂ = {naive_log:.1} → n̂ ≈ {naive_n:.2e} \
         → committee/sample sizes would be absurd"
    );
}
