//! The paper's motivating scenario: a peer-to-peer overlay that needs a size
//! estimate as a *preprocessing step* for Byzantine agreement / leader
//! election, which all assume knowledge of (an estimate of) n.
//!
//! We simulate an overlay operator who (a) estimates log n with Algorithm 2
//! under attack, (b) derives the protocol parameters that downstream
//! Byzantine-agreement machinery would need (sample sizes, committee sizes),
//! and (c) shows how far off they would be if the naive estimator had been
//! trusted instead.
//!
//! Run with: `cargo run --release --example p2p_overlay`

use byzcount::prelude::*;

fn main() {
    let n = 4096; // the overlay's true (unknown to peers) size
    let delta = 0.6;
    let net = SmallWorldNetwork::generate_seeded(n, 6, 101).expect("overlay");
    let params = ProtocolParams::for_network_default_expansion(&net, delta, 0.1);
    let placement = Placement::random_budget(n, delta, 13);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());

    println!("P2P overlay with {} peers, {} of them Byzantine", n, placement.count());

    // Step 1: Byzantine counting as preprocessing.
    let adversary = CombinedAdversary::new(knowledge);
    let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 31);
    let eval = outcome.evaluate();
    let log_estimate = eval.mean_estimate; // decided phase ≈ c · log n
    let n_estimate = outcome.size_estimate(log_estimate.round() as u64);
    println!(
        "Algorithm 2: {:.1}% honest peers agree on phase ≈ {:.1} → n̂ ≈ {:.0} (truth {})",
        100.0 * eval.good_fraction_of_honest,
        log_estimate,
        n_estimate,
        n
    );

    // Step 2: derive downstream parameters (as in King et al. style
    // committee-based agreement: committee size Θ(log n), sample lists
    // Θ(n^{1/3}) as in Brahms).
    let committee = (log_estimate.max(1.0) * 3.0).ceil() as usize;
    let sample_list = n_estimate.powf(1.0 / 3.0).ceil() as usize;
    println!("  → agreement committee size Θ(log n): {committee}");
    println!("  → Brahms-style sample list Θ(n^(1/3)): {sample_list}");

    // Step 3: what the naive estimator would have told us under one attacker.
    let mut one_byz = vec![false; n];
    one_byz[7] = true;
    let ttl = (3.0 * (n as f64).log2()).ceil() as u64 + 5;
    let naive = run_geometric_support(net.h().csr(), &one_byz, BaselineAttack::Inflate, ttl, 3);
    let naive_log = naive.outputs[0].unwrap() as f64;
    let naive_n = 2f64.powf(naive_log);
    println!(
        "naive baseline under 1 attacker: log2 n̂ = {naive_log} → n̂ ≈ {naive_n:.2e} \
         → committee/sample sizes would be absurd"
    );
}
