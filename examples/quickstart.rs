//! Quickstart: one `Simulation` builder call runs the Byzantine counting
//! protocol (Algorithm 2) on a small-world network with the paper's
//! Byzantine budget under the combined attack, and reports how many honest
//! nodes obtained a constant-factor estimate of log n.
//!
//! Run with: `cargo run --release --example quickstart`

use byzcount::prelude::*;

fn main() {
    let n = 2048;
    let d = 6;
    let delta = 0.6;

    println!("running Algorithm 2 on G = H({n},{d}) ∪ L under the combined attack …");
    let report = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n, d })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta })
        .adversary(AdversarySpec::Combined)
        .derived_params(delta, 0.1)
        .seed(42)
        .build()
        .expect("spec")
        .run()
        .expect("run");

    let counting = report.counting.expect("counting workload");
    let eval = counting.eval_factor2;
    println!(
        "Byzantine nodes       : {} (n^{{1-δ}} with δ = {delta})",
        report.byzantine_count
    );
    println!("rounds executed       : {}", report.rounds);
    println!("messages delivered    : {}", report.messages_delivered);
    println!(
        "largest message       : {} IDs + {} bits",
        report.max_message_ids, report.max_message_bits
    );
    println!(
        "reference phase       : {:.2} (≈ where l_i reaches log2 n = {:.1})",
        eval.reference_phase,
        (n as f64).log2()
    );
    println!("mean decided phase    : {:.2}", eval.mean_estimate);
    println!(
        "honest nodes w/ good estimate : {:.1}%",
        100.0 * eval.good_fraction_of_honest
    );
    println!("honest nodes crashed  : {}", eval.honest_crashed);
    println!(
        "Definition 1 satisfied (factor 3): {}",
        counting.definition1_factor3
    );

    // The exact run is reproducible from its serialized spec alone.
    println!(
        "\nreproduce with: byzcount-cli run <<'EOF'\n{}\nEOF",
        report.spec.to_json()
    );
}
