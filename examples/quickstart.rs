//! Quickstart: build a small-world network, corrupt the paper's Byzantine
//! budget of nodes, run the Byzantine counting protocol (Algorithm 2) and
//! report how many honest nodes obtained a constant-factor estimate of log n.
//!
//! Run with: `cargo run --release --example quickstart`

use byzcount::prelude::*;

fn main() {
    let n = 2048;
    let d = 6;
    let delta = 0.6;

    println!("generating G = H({n},{d}) ∪ L …");
    let net = SmallWorldNetwork::generate_seeded(n, d, 42).expect("network generation");
    let params = ProtocolParams::for_network(&net, delta, 0.1);
    println!(
        "  k = {}, a = {:.4}, b = {:.2}, analytic approximation factor b/a = {:.1}",
        params.k,
        params.a(),
        params.b(),
        params.approximation_factor()
    );

    let placement = Placement::random_budget(n, delta, 7);
    println!("corrupting {} nodes (n^{{1-δ}} with δ = {delta})", placement.count());

    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
    let adversary = CombinedAdversary::new(knowledge);

    println!("running Algorithm 2 …");
    let outcome = run_counting_with(&net, &params, placement.mask(), adversary, 99);
    let eval = outcome.evaluate();

    println!("rounds executed       : {}", eval.rounds);
    println!("messages delivered    : {}", outcome.metrics.messages_delivered);
    println!("largest message       : {} IDs + {} bits", outcome.metrics.max_message.ids, outcome.metrics.max_message.bits);
    println!("reference phase       : {:.2} (≈ where l_i reaches log2 n = {:.1})", eval.reference_phase, (n as f64).log2());
    println!("mean decided phase    : {:.2}", eval.mean_estimate);
    println!("honest nodes w/ good estimate : {:.1}%", 100.0 * eval.good_fraction_of_honest);
    println!("honest nodes crashed  : {}", eval.honest_crashed);
    println!("Definition 1 satisfied: {}", outcome.satisfies_definition1(2.0));
}
