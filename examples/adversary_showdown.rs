//! Run every implemented adversary strategy against Algorithm 2 on the same
//! network and compare the damage each one manages to do.
//!
//! Run with: `cargo run --release --example adversary_showdown`

use byzcount::prelude::*;

fn main() {
    let n = 1024;
    let delta = 0.6;
    let net = SmallWorldNetwork::generate_seeded(n, 6, 23).expect("network");
    let params = ProtocolParams::for_network_default_expansion(&net, delta, 0.1);
    let placement = Placement::random_budget(n, delta, 17);
    let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());

    println!("n = {n}, Byzantine nodes = {}, d = {}, k = {}\n", placement.count(), params.d, params.k);
    println!("{:<22} {:>10} {:>10} {:>10}", "adversary", "good %", "crashed", "rounds");

    let report = |name: &str, outcome: CountingOutcome| {
        let eval = outcome.evaluate();
        println!(
            "{:<22} {:>9.1}% {:>10} {:>10}",
            name,
            100.0 * eval.good_fraction_of_honest,
            eval.honest_crashed,
            eval.rounds
        );
    };

    report(
        "honest-behaving",
        run_counting_with(&net, &params, placement.mask(), HonestBehavingAdversary, 1),
    );
    report(
        "silent",
        run_counting_with(&net, &params, placement.mask(), SilentAdversary, 2),
    );
    report(
        "inflation (legal)",
        run_counting_with(
            &net,
            &params,
            placement.mask(),
            ColorInflationAdversary::new(knowledge.clone(), InjectionTiming::Legal),
            3,
        ),
    );
    report(
        "inflation (last step)",
        run_counting_with(
            &net,
            &params,
            placement.mask(),
            ColorInflationAdversary::new(knowledge.clone(), InjectionTiming::LastStep),
            4,
        ),
    );
    report(
        "suppression",
        run_counting_with(
            &net,
            &params,
            placement.mask(),
            SuppressionAdversary::new(knowledge.clone()),
            5,
        ),
    );
    report(
        "fake chain (Fig. 1)",
        run_counting_with(
            &net,
            &params,
            placement.mask(),
            FakeChainAdversary::new(knowledge.clone()),
            6,
        ),
    );
    report(
        "combined",
        run_counting_with(
            &net,
            &params,
            placement.mask(),
            CombinedAdversary::new(knowledge),
            7,
        ),
    );
}
