//! Run every implemented adversary strategy against Algorithm 2 on the same
//! network and compare the damage each one manages to do — each scenario is
//! the same builder call with a different `AdversarySpec`.
//!
//! Run with: `cargo run --release --example adversary_showdown`

use byzcount::prelude::*;

fn main() {
    let n = 1024;
    let delta = 0.6;

    let adversaries: [(&str, AdversarySpec); 7] = [
        ("honest-behaving", AdversarySpec::HonestBehaving),
        ("silent", AdversarySpec::Silent),
        (
            "inflation (legal)",
            AdversarySpec::ColorInflation {
                timing: TimingSpec::Legal,
            },
        ),
        (
            "inflation (last step)",
            AdversarySpec::ColorInflation {
                timing: TimingSpec::LastStep,
            },
        ),
        ("suppression", AdversarySpec::Suppression),
        ("fake chain (Fig. 1)", AdversarySpec::FakeChain),
        ("combined", AdversarySpec::Combined),
    ];

    println!("n = {n}, Byzantine budget n^{{1-δ}} with δ = {delta}\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "adversary", "good %", "crashed", "rounds"
    );

    for (name, adversary) in adversaries {
        let report = Simulation::builder()
            .topology(TopologySpec::SmallWorld { n, d: 6 })
            .workload(WorkloadSpec::Byzantine)
            .placement(PlacementSpec::RandomBudget { delta })
            .adversary(adversary)
            .derived_params(delta, 0.1)
            .seed(23)
            .build()
            .expect("spec")
            .run()
            .expect("run");
        let eval = report.counting.expect("counting workload").eval_factor2;
        println!(
            "{:<22} {:>9.1}% {:>10} {:>10}",
            name,
            100.0 * eval.good_fraction_of_honest,
            eval.honest_crashed,
            report.rounds
        );
    }
}
