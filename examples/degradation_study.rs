//! Degradation study: how gracefully does Byzantine counting (Algorithm 2)
//! survive an *imperfect network* — message loss, bounded delay, node churn
//! and a transient partition — compared to the spanning-tree baseline?
//!
//! The paper proves its guarantees in a clean synchronous model; the
//! `netsim-faults` layer relaxes that model while keeping every run
//! deterministic in the master seed.  This example sweeps the loss rate,
//! then stacks delay, churn and a partition on top, and prints one line
//! per scenario.
//!
//! Run with: `cargo run --release --example degradation_study`

use byzcount::prelude::*;

fn run_one(
    workload: WorkloadSpec,
    fault: FaultSpec,
    n: usize,
    seeds: u32,
) -> (String, BatchReport) {
    let label = match &fault {
        FaultSpec::None => "perfect network".to_string(),
        other => other.describe(),
    };
    let topology = match workload {
        WorkloadSpec::Byzantine | WorkloadSpec::Basic => TopologySpec::SmallWorld { n, d: 6 },
        _ => TopologySpec::SmallWorldH { n, d: 6 },
    };
    let report = Simulation::builder()
        .topology(topology)
        .workload(workload)
        .fault(fault)
        .seeds(SeedPolicy::Sequence {
            base: 0xFA17,
            count: seeds,
        })
        .build()
        .expect("spec")
        .run_batch()
        .expect("batch");
    (label, report)
}

fn print_row(name: &str, label: &str, report: &BatchReport) {
    let agg = &report.aggregates[0];
    let good = agg
        .good_fraction
        .map(|g| format!("{:.3}", g.mean))
        .unwrap_or_else(|| "  -  ".into());
    let rel_err: Vec<f64> = report
        .runs
        .iter()
        .filter_map(RunReport::relative_error)
        .collect();
    let err = if rel_err.is_empty() {
        "  -  ".into()
    } else {
        format!("{:.3}", rel_err.iter().sum::<f64>() / rel_err.len() as f64)
    };
    println!(
        "{name:<18} {label:<55} good={good:<6} rel_err={err:<6} rounds={:<7.1} lost={:<8.1} delayed={:<7.1} churn={:.1}",
        agg.rounds.mean,
        agg.messages_lost.mean,
        report.runs.iter().map(|r| r.messages_delayed as f64).sum::<f64>() / report.runs.len() as f64,
        report.runs.iter().map(|r| r.churn_crashes as f64).sum::<f64>() / report.runs.len() as f64,
    );
}

fn main() {
    let n = 1024;
    let seeds = 3;
    println!(
        "degradation under network faults, n = {n}, {seeds} seeds per row \
         (no Byzantine nodes — the network itself is the adversary)\n"
    );

    let mut sweep: Vec<FaultSpec> = vec![FaultSpec::None];
    for rate in [0.05, 0.15, 0.30] {
        sweep.push(FaultSpec::Loss { rate });
    }
    sweep.push(FaultSpec::Delay {
        max_delay: 3,
        rate: 0.5,
    });
    sweep.push(FaultSpec::Churn {
        rate: 0.01,
        downtime: 8,
    });
    sweep.push(FaultSpec::Partition {
        start: 5,
        duration: 10,
    });
    sweep.push(FaultSpec::Compose(vec![
        FaultSpec::Loss { rate: 0.10 },
        FaultSpec::Delay {
            max_delay: 2,
            rate: 0.3,
        },
        FaultSpec::Churn {
            rate: 0.005,
            downtime: 8,
        },
    ]));

    for fault in &sweep {
        let (label, report) = run_one(WorkloadSpec::Byzantine, fault.clone(), n, seeds);
        print_row("byzantine-counting", &label, &report);
    }
    println!();
    for fault in &sweep {
        let (label, report) = run_one(
            WorkloadSpec::SpanningTree {
                max_rounds: None,
                attack: AttackSpec::None,
            },
            fault.clone(),
            n,
            seeds,
        );
        print_row("spanning-tree", &label, &report);
    }

    println!(
        "\nSame seed + same spec ⇒ byte-identical reports, faults included; \
         see `byzcount-cli template faulty` for the JSON form."
    );
}
