//! A miniature scaling study: how accuracy, round count and message volume
//! evolve with n.  (The full sweep lives in `byzcount-cli e1/e2`.)
//!
//! Run with: `cargo run --release --example scaling_study`

use byzcount::prelude::*;

fn main() {
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>14} {:>10}",
        "n", "byz", "good %", "rounds", "msgs/node/rnd", "est/log2n"
    );
    for &n in &[512usize, 1024, 2048, 4096] {
        let delta = 0.6;
        let net = SmallWorldNetwork::generate_seeded(n, 6, n as u64).expect("network");
        let params = ProtocolParams::for_network_default_expansion(&net, delta, 0.1);
        let placement = Placement::random_budget(n, delta, n as u64 ^ 0xAB);
        let knowledge = AdversaryKnowledge::gather(&net, &params, placement.mask());
        let adversary = ColorInflationAdversary::new(knowledge, InjectionTiming::Legal);
        let outcome = run_counting_with(&net, &params, placement.mask(), adversary, n as u64 ^ 0xCD);
        let eval = outcome.evaluate();
        println!(
            "{:>6} {:>6} {:>9.1}% {:>10} {:>14.1} {:>10.2}",
            n,
            placement.count(),
            100.0 * eval.good_fraction_of_honest,
            eval.rounds,
            outcome.metrics.avg_messages_per_node_round(n),
            eval.mean_estimate / (n as f64).log2(),
        );
    }
}
