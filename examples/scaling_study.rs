//! A miniature scaling study: how accuracy, round count and message volume
//! evolve with n.  One multi-size, multi-seed batch replaces the hand-rolled
//! loop.  (The full sweep lives in `byzcount-cli e1/e2`.)
//!
//! Run with: `cargo run --release --example scaling_study`

use byzcount::prelude::*;

fn main() {
    let sizes = [512usize, 1024, 2048, 4096];
    let delta = 0.6;
    let batch = Simulation::builder()
        .topology(TopologySpec::SmallWorld { n: sizes[0], d: 6 })
        .workload(WorkloadSpec::Byzantine)
        .placement(PlacementSpec::RandomBudget { delta })
        .adversary(AdversarySpec::ColorInflation {
            timing: TimingSpec::Legal,
        })
        .derived_params(delta, 0.1)
        .seeds(SeedPolicy::Sequence {
            base: 0xAB,
            count: 3,
        })
        .sizes(&sizes)
        .build()
        .expect("spec")
        .run_batch()
        .expect("batch");

    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>14} {:>10}",
        "n", "byz", "good %", "rounds", "msgs/node/rnd", "est/log2n"
    );
    for &n in &sizes {
        let agg = batch.aggregate_for(n).expect("aggregate");
        let byz = batch
            .runs
            .iter()
            .find(|r| r.n == n)
            .map(|r| r.byzantine_count)
            .unwrap_or(0);
        let msgs_per_node_round = agg.messages.mean / (agg.rounds.mean.max(1.0) * n as f64);
        println!(
            "{:>6} {:>6} {:>9.1}% {:>10.0} {:>14.1} {:>10.2}",
            n,
            byz,
            100.0 * agg.good_fraction.map(|g| g.mean).unwrap_or(0.0),
            agg.rounds.mean,
            msgs_per_node_round,
            agg.mean_estimate.mean / (n as f64).log2(),
        );
    }
}
